package scenario

import (
	"fmt"
	"os"
	"sort"
	"time"

	"seep"
)

// The executor. Run compiles a scenario to a seep.Topology + seep
// options, deploys it on the requested substrate, injects the seeded
// workload, drives the timed event script (virtual time on Simulated,
// wall-clock on Live/Distributed — both through Job.Run, which is the
// whole point of the shared Runtime interface), and checks the
// assertions block. Assertion misses are Result.Failures — each echoes
// the scenario name and seed so any reported run can be replayed
// exactly; infrastructure problems (deploy errors, unsupported
// substrate) are returned as an error instead.

// RunConfig parameterises one execution of a scenario.
type RunConfig struct {
	// Substrate is "sim", "live" or "dist".
	Substrate string
	// Seed overrides the scenario's seed when non-zero.
	Seed int64
	// WorkerAddrs and TopologyName connect external scenarios to running
	// seep-worker daemons (Distributed only; empty = in-process workers).
	WorkerAddrs  []string
	TopologyName string
	// ControlPlaneDir holds the Distributed coordinator's journal.
	// Scenarios with kill-coordinator events need one; when empty, the
	// executor provisions a temporary directory for the run.
	ControlPlaneDir string
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// Result is the outcome of one scenario execution.
type Result struct {
	Scenario  string
	Substrate string
	Seed      int64
	// Counts is the per-key managed state read back from the
	// exact-counts operator (nil without that assertion).
	Counts map[string]int64
	// Expected is the workload oracle Counts was compared against.
	Expected map[string]int64
	// Metrics is the job's final snapshot.
	Metrics seep.Metrics
	// Failures lists every assertion miss; empty = pass.
	Failures []string
}

// OK reports whether every assertion held.
func (r *Result) OK() bool { return len(r.Failures) == 0 }

// Run executes a scenario on one substrate.
func Run(s *Scenario, cfg RunConfig) (*Result, error) {
	if errs := Validate(s); len(errs) > 0 {
		return nil, fmt.Errorf("scenario %s is invalid: %v", s.Name, errs[0])
	}
	declared := false
	for _, sub := range s.Substrates {
		if sub == cfg.Substrate {
			declared = true
			break
		}
	}
	if !declared {
		return nil, fmt.Errorf("scenario %s does not declare substrate %q (declares %v)", s.Name, cfg.Substrate, s.Substrates)
	}
	seed := s.Seed
	if cfg.Seed != 0 {
		seed = cfg.Seed
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	res := &Result{Scenario: s.Name, Substrate: cfg.Substrate, Seed: seed}
	fail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		res.Failures = append(res.Failures,
			fmt.Sprintf("scenario %s [substrate %s, seed %d]: %s", s.Name, cfg.Substrate, seed, msg))
	}

	topo, err := buildTopology(s)
	if err != nil {
		return nil, err
	}
	if cfg.Substrate == "dist" && cfg.ControlPlaneDir == "" && usesCoordinatorFaults(s) {
		dir, err := os.MkdirTemp("", "seep-controlplane-*")
		if err != nil {
			return nil, fmt.Errorf("scenario %s: control-plane dir: %v", s.Name, err)
		}
		defer os.RemoveAll(dir)
		cfg.ControlPlaneDir = dir
	}
	rt, err := runtimeFor(s, cfg, seed)
	if err != nil {
		return nil, err
	}
	job, err := rt.Deploy(topo)
	if err != nil {
		return nil, fmt.Errorf("scenario %s [substrate %s, seed %d]: deploy: %v", s.Name, cfg.Substrate, seed, err)
	}
	defer job.Stop()
	job.Start()
	logf("scenario %s: substrate=%s seed=%d duration=%v events=%d", s.Name, cfg.Substrate, seed, s.Duration, len(s.Events))

	// The global tuple index threads the initial injection and every
	// burst onto one deterministic sequence.
	var injected uint64
	if w := s.Workload; w != nil {
		if err := job.InjectBatch(seep.OpID(w.Source), w.Tuples, w.genFrom(seed, 0)); err != nil {
			return nil, fmt.Errorf("scenario %s [substrate %s, seed %d]: inject: %v", s.Name, cfg.Substrate, seed, err)
		}
		injected = uint64(w.Tuples)
	}

	// Drive the event script: sort by time, advance the job to each
	// event's instant, apply it, then run out the remaining duration.
	events := make([]Event, len(s.Events))
	copy(events, s.Events)
	if w := s.Workload; w != nil && w.SustainedOverload > 0 {
		// sustained-overload: re-inject the base workload at evenly
		// spaced instants so the pipeline stays saturated for the whole
		// span. The synthesized bursts thread the same tuple sequence as
		// scripted ones, so the exact-counts oracle still holds.
		step := s.Duration / time.Duration(w.SustainedOverload+1)
		for i := 1; i <= w.SustainedOverload; i++ {
			events = append(events, Event{
				At:     step * time.Duration(i),
				Kind:   "inject-burst",
				Op:     w.Source,
				Tuples: w.Tuples,
			})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	now := time.Duration(0)
	partitioned := false
	for i := range events {
		ev := events[i]
		if ev.At > now {
			if partitioned && cfg.Substrate != "sim" {
				// A partitioned link black-holes all traffic, so the job
				// looks quiescent immediately — but heartbeat starvation
				// needs the scripted span of real time to trip the failure
				// detector. Hold wall-clock instead of quiescing early.
				time.Sleep(ev.At - now)
			} else {
				job.Run(ev.At - now)
			}
			now = ev.At
		}
		logf("scenario %s: t=%v %s op=%s", s.Name, now, ev.Kind, ev.Op)
		if err := applyEvent(job, s, ev, seed, &injected); err != nil {
			fail("event %s at %v: %v", ev.Kind, ev.At, err)
		}
		switch ev.Kind {
		case "partition-link":
			partitioned = true
		case "heal-links":
			partitioned = false
		}
	}
	if s.Duration > now {
		job.Run(s.Duration - now)
	}

	res.Metrics = job.MetricsSnapshot()
	checkAssertions(s, job, res, seed, injected, fail)
	return res, nil
}

// runtimeFor builds the substrate runtime with the scenario's options.
// Options the substrate does not accept are simply not passed — the
// scenario declares intent, the executor translates it per substrate
// (the public API still rejects misuse loudly for direct callers).
func runtimeFor(s *Scenario, cfg RunConfig, seed int64) (seep.Runtime, error) {
	o := s.Options
	opts := []seep.Option{seep.WithSeed(seed)}
	if o.CheckpointIntervalSet {
		// Simulated rejects an explicit 0 (it cannot disable checkpointing
		// that way); keep its default instead.
		if !(cfg.Substrate == "sim" && o.CheckpointInterval == 0) {
			opts = append(opts, seep.WithCheckpointInterval(o.CheckpointInterval))
		}
	}
	if o.DetectDelay > 0 {
		opts = append(opts, seep.WithDetectDelay(o.DetectDelay))
	}
	if o.TimerInterval > 0 {
		opts = append(opts, seep.WithTimerInterval(o.TimerInterval))
	}
	if o.RecoveryParallelism > 0 {
		opts = append(opts, seep.WithRecoveryParallelism(o.RecoveryParallelism))
	}
	if o.BatchSize > 0 && cfg.Substrate != "sim" {
		opts = append(opts, seep.WithBatching(o.BatchSize, o.BatchLinger))
	}
	if o.QueueBound > 0 && cfg.Substrate != "sim" {
		opts = append(opts, seep.WithQueueBound(o.QueueBound))
	}
	if o.MemoryLimitBytes > 0 && cfg.Substrate != "sim" {
		opts = append(opts, seep.WithMemoryLimit(o.MemoryLimitBytes))
	}
	if o.DeltaCheckpoints {
		opts = append(opts, seep.WithIncrementalCheckpoints(10, 0.5))
		if cfg.Substrate == "dist" {
			opts = append(opts, seep.WithDeltaCheckpoints(false))
		}
	}
	if o.VMPool != nil && cfg.Substrate == "sim" {
		opts = append(opts, seep.WithVMPool(seep.PoolConfig{
			Size:                 o.VMPool.Size,
			HandoffDelayMillis:   o.VMPool.Handoff.Milliseconds(),
			ProvisionDelayMillis: o.VMPool.Provision.Milliseconds(),
		}))
	}
	if o.Policy != nil {
		opts = append(opts, seep.WithPolicy(seep.Policy{
			Threshold:          o.Policy.Threshold,
			ConsecutiveReports: o.Policy.ConsecutiveReports,
			ReportEveryMillis:  o.Policy.ReportEvery.Milliseconds(),
		}))
		if o.ScaleIn != nil {
			opts = append(opts, seep.WithScaleIn(seep.ScaleInPolicy{
				LowWatermark:       o.ScaleIn.LowWatermark,
				ConsecutiveReports: o.ScaleIn.ConsecutiveReports,
				MinPartitions:      o.ScaleIn.MinPartitions,
			}))
		}
	}
	switch cfg.Substrate {
	case "sim":
		return seep.Simulated(opts...), nil
	case "live":
		return seep.Live(opts...), nil
	case "dist":
		if cfg.ControlPlaneDir != "" {
			opts = append(opts, seep.WithControlPlaneDir(cfg.ControlPlaneDir))
		}
		if len(cfg.WorkerAddrs) > 0 {
			name := cfg.TopologyName
			if name == "" {
				name = s.Name
			}
			opts = append(opts, seep.WithWorkerAddrs(cfg.WorkerAddrs...), seep.WithTopologyName(name))
		} else if o.Workers > 0 {
			opts = append(opts, seep.WithWorkers(o.Workers))
		}
		return seep.Distributed(opts...), nil
	}
	return nil, fmt.Errorf("unknown substrate %q (want sim, live or dist)", cfg.Substrate)
}

// usesCoordinatorFaults reports whether the event script touches the
// coordinator's lifecycle (and therefore needs a control-plane journal).
func usesCoordinatorFaults(s *Scenario) bool {
	for _, ev := range s.Events {
		if ev.Kind == "kill-coordinator" || ev.Kind == "restart-coordinator" {
			return true
		}
	}
	return false
}

// applyEvent performs one scripted action against the running job.
func applyEvent(job seep.Job, s *Scenario, ev Event, seed int64, injected *uint64) error {
	instanceAt := func(op string, idx int) (seep.InstanceID, error) {
		insts := job.Instances(seep.OpID(op))
		if idx >= len(insts) {
			return seep.InstanceID{}, fmt.Errorf("operator %q has %d instances, wanted index %d", op, len(insts), idx)
		}
		return insts[idx], nil
	}
	switch ev.Kind {
	case "kill-worker", "fail-instance":
		inst, err := instanceAt(ev.Op, ev.Partition)
		if err != nil {
			return err
		}
		return job.Fail(inst)
	case "scale-out":
		inst, err := instanceAt(ev.Op, ev.Partition)
		if err != nil {
			return err
		}
		pi := ev.Pi
		if pi == 0 {
			pi = 2
		}
		return job.ScaleOut(inst, pi)
	case "scale-in":
		n := ev.Merge
		if n == 0 {
			n = 2
		}
		insts := job.Instances(seep.OpID(ev.Op))
		if len(insts) < n {
			return fmt.Errorf("operator %q has %d instances, cannot merge %d", ev.Op, len(insts), n)
		}
		return job.ScaleIn(insts[:n])
	case "slow-link":
		lf, ok := job.(seep.LinkFaulter)
		if !ok {
			return fmt.Errorf("substrate does not support link faults")
		}
		return lf.SlowLink(seep.OpID(ev.Op), ev.Delay)
	case "partition-link":
		lf, ok := job.(seep.LinkFaulter)
		if !ok {
			return fmt.Errorf("substrate does not support link faults")
		}
		return lf.PartitionLink(seep.OpID(ev.Op))
	case "heal-links":
		lf, ok := job.(seep.LinkFaulter)
		if !ok {
			return fmt.Errorf("substrate does not support link faults")
		}
		lf.HealLinks()
		return nil
	case "kill-coordinator":
		cf, ok := job.(seep.CoordinatorFaulter)
		if !ok {
			return fmt.Errorf("substrate does not support coordinator faults")
		}
		return cf.KillCoordinator()
	case "restart-coordinator":
		cf, ok := job.(seep.CoordinatorFaulter)
		if !ok {
			return fmt.Errorf("substrate does not support coordinator faults")
		}
		return cf.RestartCoordinator()
	case "inject-burst":
		w := s.Workload
		if w == nil {
			return fmt.Errorf("inject-burst without a workload")
		}
		if err := job.InjectBatch(seep.OpID(w.Source), ev.Tuples, w.genFrom(seed, *injected)); err != nil {
			return err
		}
		*injected += uint64(ev.Tuples)
		return nil
	}
	return fmt.Errorf("unknown event kind %q", ev.Kind)
}

// counted is the managed-state accessor exact-counts assertions need;
// WordCounter implements it.
type counted interface{ Counts() map[string]int64 }

// checkAssertions evaluates the assertions block against the final job
// state and metrics.
func checkAssertions(s *Scenario, job seep.Job, res *Result, seed int64, injected uint64, fail func(string, ...any)) {
	m := res.Metrics

	if ec := s.Assertions.ExactCounts; ec != nil {
		expected := s.Workload.expectedCounts(seed, int(injected))
		got := make(map[string]int64)
		for _, inst := range job.Instances(seep.OpID(ec.Op)) {
			op, ok := job.OperatorOf(inst).(counted)
			if !ok {
				fail("exact-counts: operator %q instance %v does not expose Counts() (got %T)", ec.Op, inst, job.OperatorOf(inst))
				break
			}
			for k, v := range op.Counts() {
				got[k] += v
			}
		}
		res.Counts, res.Expected = got, expected
		misses := 0
		for k, want := range expected {
			if got[k] != want {
				misses++
				if misses <= 5 {
					fail("exact-counts: %s[%q] = %d, want %d", ec.Op, k, got[k], want)
				}
			}
		}
		for k := range got {
			if _, ok := expected[k]; !ok {
				misses++
				if misses <= 5 {
					fail("exact-counts: unexpected key %q = %d", k, got[k])
				}
			}
		}
		if misses > 5 {
			fail("exact-counts: ... and %d more mismatched keys", misses-5)
		}
	}

	if r := s.Assertions.Recovery; r != nil {
		n := len(m.Recoveries)
		if n < r.Min {
			fail("recovery: %d completed recoveries, want at least %d", n, r.Min)
		}
		if r.Max >= 0 && n > r.Max {
			fail("recovery: %d completed recoveries, want at most %d", n, r.Max)
		}
		if r.Deadline > 0 {
			for _, rec := range m.Recoveries {
				if d := time.Duration(rec.CompletedAt-rec.StartedAt) * time.Millisecond; d > r.Deadline {
					fail("recovery: %v took %v, deadline %v", rec.Victim, d, r.Deadline)
				}
			}
		}
	}

	if sl := s.Assertions.SinkLatency; sl != nil {
		if m.Latency.Count == 0 {
			fail("sink-latency: no latency samples reached sink %q", sl.Sink)
		}
		if max := sl.Max; max > 0 && m.Latency.Max > max.Milliseconds() {
			fail("sink-latency: max %dms exceeds bound %v", m.Latency.Max, max)
		}
		if p99 := sl.P99; p99 > 0 && m.Latency.P99 > p99.Milliseconds() {
			fail("sink-latency: p99 %dms exceeds bound %v", m.Latency.P99, p99)
		}
	}

	if ml := s.Assertions.MaxLatency; ml != nil {
		if m.Latency.Count == 0 {
			fail("max-latency: no latency samples reached sink %q", ml.Sink)
		} else if m.Latency.Max > ml.Ceiling.Milliseconds() {
			fail("max-latency: a record took %dms through sink %q, hard ceiling %v", m.Latency.Max, ml.Sink, ml.Ceiling)
		}
	}

	if qd := s.Assertions.QueueDepth; qd != nil {
		if got := int64(m.Backpressure.PeakQueueDepth); got > qd.Max {
			fail("queue-depth: peak input queue reached %d batches, bound %d", got, qd.Max)
		}
	}

	if sk := s.Assertions.SpilledKeys; sk != nil {
		got := int64(m.Backpressure.Spill.SpilledTotal)
		if got < sk.Min {
			fail("spilled-keys: %d keys spilled, want at least %d (memory ceiling never engaged?)", got, sk.Min)
		}
		if sk.Max >= 0 && got > sk.Max {
			fail("spilled-keys: %d keys spilled, want at most %d", got, sk.Max)
		}
	}

	for _, c := range s.Assertions.Counters {
		var v int64
		switch c.Name {
		case "sink-tuples":
			v = int64(m.SinkTuples)
		case "duplicates-dropped":
			v = int64(m.DuplicatesDropped)
		case "recoveries":
			v = int64(len(m.Recoveries))
		case "merges":
			v = int64(m.Merges)
		case "checkpoints":
			v = int64(m.Checkpoints.Fulls + m.Checkpoints.Deltas)
		}
		if v < c.Min {
			fail("counter %s = %d, want at least %d", c.Name, v, c.Min)
		}
		if c.Max >= 0 && v > c.Max {
			fail("counter %s = %d, want at most %d", c.Name, v, c.Max)
		}
	}

	for op, want := range s.Assertions.Parallelism {
		if got := m.Parallelism[seep.OpID(op)]; got != want {
			fail("parallelism: %s = %d, want %d", op, got, want)
		}
	}

	if !s.Assertions.AllowErrors && len(m.Errors) > 0 {
		fail("job reported errors: %v", m.Errors)
	}
}
