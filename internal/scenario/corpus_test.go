package scenario

import (
	"reflect"
	"testing"
)

// TestScenarioCorpus runs every committed scenario on every substrate
// it declares — the same sweep CI's chaos-matrix job performs. External
// scenarios need running seep-worker daemons and are validate-only
// here. `go test -short` keeps just the simulator leg.
func TestScenarioCorpus(t *testing.T) {
	corpus, err := LoadDir("../../scenarios")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) < 12 {
		t.Fatalf("scenario corpus has %d files, want at least 12", len(corpus))
	}
	for _, s := range corpus {
		if errs := Validate(s); len(errs) > 0 {
			t.Errorf("%s: invalid: %v", s.Name, errs)
			continue
		}
		if s.External {
			continue
		}
		for _, sub := range s.Substrates {
			if sub != "sim" && testing.Short() {
				continue
			}
			// Sequential on purpose: the Distributed legs share the
			// process-global transport fault table and heartbeat timers,
			// and parallel wall-clock scenarios skew each other's
			// failure-detection windows under -race.
			t.Run(s.Name+"/"+sub, func(t *testing.T) {
				res, err := Run(s, RunConfig{Substrate: sub})
				if err != nil {
					t.Fatal(err)
				}
				for _, f := range res.Failures {
					t.Error(f)
				}
			})
		}
	}
}

// TestScenarioParityKillRecoverScale is the cross-substrate parity
// check: the canonical kill-recover-scale scenario must yield the exact
// same per-key counts on Simulated, Live and Distributed. The workload
// is a pure function of the seed, so any divergence is a substrate
// losing or duplicating tuples across the kill/recover/scale script.
func TestScenarioParityKillRecoverScale(t *testing.T) {
	if testing.Short() {
		t.Skip("live and dist legs need wall-clock time")
	}
	s, err := LoadFile("../../scenarios/kill-recover-scale.yaml")
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]map[string]int64, 3)
	for _, sub := range []string{"sim", "live", "dist"} {
		res, err := Run(s, RunConfig{Substrate: sub})
		if err != nil {
			t.Fatalf("[%s] %v", sub, err)
		}
		for _, f := range res.Failures {
			t.Errorf("[%s] %s", sub, f)
		}
		if len(res.Counts) == 0 {
			t.Fatalf("[%s] no counts read back", sub)
		}
		counts[sub] = res.Counts
	}
	if t.Failed() {
		return
	}
	for _, sub := range []string{"live", "dist"} {
		if !reflect.DeepEqual(counts["sim"], counts[sub]) {
			t.Errorf("per-key counts diverge between sim and %s:\n  sim:  %v\n  %s: %v",
				sub, counts["sim"], sub, counts[sub])
		}
	}
}

// TestScenarioDeltaCheckpointParity kills a worker mid-stream on the
// Distributed substrate twice — once shipping delta checkpoints over
// the wire, once shipping only full snapshots — and asserts the exact
// per-key counts match. The workload is a pure function of the seed, so
// equality means folding dirty-key fragments into the coordinator's
// backup store recovers the same state a full checkpoint would.
func TestScenarioDeltaCheckpointParity(t *testing.T) {
	if testing.Short() {
		t.Skip("dist legs need wall-clock time")
	}
	counts := make(map[bool]map[string]int64, 2)
	for _, delta := range []bool{true, false} {
		s, err := LoadFile("../../scenarios/kill-recover-scale.yaml")
		if err != nil {
			t.Fatal(err)
		}
		s.Options.DeltaCheckpoints = delta
		res, err := Run(s, RunConfig{Substrate: "dist"})
		if err != nil {
			t.Fatalf("[delta=%v] %v", delta, err)
		}
		for _, f := range res.Failures {
			t.Errorf("[delta=%v] %s", delta, f)
		}
		if len(res.Counts) == 0 {
			t.Fatalf("[delta=%v] no counts read back", delta)
		}
		counts[delta] = res.Counts
	}
	if t.Failed() {
		return
	}
	if !reflect.DeepEqual(counts[true], counts[false]) {
		t.Errorf("per-key counts diverge between delta and full checkpoint runs:\n  delta: %v\n  full:  %v",
			counts[true], counts[false])
	}
}
