package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"seep"
)

// The factory registry maps scenario `kind` names to operator
// factories, mirroring the WorkerRegistry idea: scenario files name
// operators symbolically and every binary running them resolves the
// names against its compiled-in registry. The built-ins cover the
// library operators scenarios exercise; binaries embedding the runner
// can add their own with RegisterFactory.

// FactoryFunc builds one operator factory from an op spec (so kinds can
// read per-op parameters such as window-millis).
type FactoryFunc func(op OpSpec) seep.Factory

// stateless marks kinds declared via Topology.Stateless; everything
// else registers as Stateful.
var (
	factoryMu sync.Mutex
	factories = map[string]FactoryFunc{
		"word-splitter": func(OpSpec) seep.Factory {
			return func() seep.Operator { return seep.WordSplitter() }
		},
		"passthrough": func(OpSpec) seep.Factory {
			return func() seep.Operator { return seep.Passthrough() }
		},
		"word-counter": func(op OpSpec) seep.Factory {
			return func() seep.Operator { return seep.NewWordCounter(op.WindowMillis) }
		},
		"keyed-sum": func(op OpSpec) seep.Factory {
			return func() seep.Operator {
				return seep.NewKeyedSum(op.WindowMillis, func(p any) (float64, bool) {
					switch v := p.(type) {
					case float64:
						return v, true
					case int64:
						return float64(v), true
					case int:
						return float64(v), true
					case string:
						return 1, true // counting mode: each word contributes 1
					}
					return 0, false
				})
			}
		},
	}
	statelessKinds = map[string]bool{
		"word-splitter": true,
		"passthrough":   true,
	}
)

// RegisterFactory adds (or replaces) a factory kind. Stateless kinds
// run without managed state — they are declared via
// Topology.Stateless and are never checkpointed.
func RegisterFactory(kind string, stateless bool, f FactoryFunc) {
	factoryMu.Lock()
	defer factoryMu.Unlock()
	factories[kind] = f
	statelessKinds[kind] = stateless
}

// HasFactory reports whether a kind is registered ("source" and "sink"
// are structural, not factories).
func HasFactory(kind string) bool {
	factoryMu.Lock()
	defer factoryMu.Unlock()
	_, ok := factories[kind]
	return ok
}

func factoryNames() string {
	factoryMu.Lock()
	defer factoryMu.Unlock()
	names := make([]string, 0, len(factories))
	for k := range factories {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// buildTopology compiles the scenario's topology spec into a
// seep.Topology.
func buildTopology(s *Scenario) (*seep.Topology, error) {
	t := seep.NewTopology()
	for _, op := range s.Ops {
		var opts []seep.OpOption
		if op.Parallelism > 0 {
			opts = append(opts, seep.Parallelism(op.Parallelism))
		}
		if op.MaxParallelism > 0 {
			opts = append(opts, seep.MaxParallelism(op.MaxParallelism))
		}
		if op.Cost > 0 {
			opts = append(opts, seep.Cost(op.Cost))
		}
		if op.StateBytesPerKey > 0 {
			opts = append(opts, seep.StateBytesPerKey(op.StateBytesPerKey))
		}
		switch op.Kind {
		case "source":
			t.Source(op.ID, opts...)
		case "sink":
			t.Sink(op.ID, opts...)
		default:
			factoryMu.Lock()
			f, ok := factories[op.Kind]
			stateless := statelessKinds[op.Kind]
			factoryMu.Unlock()
			if !ok {
				return nil, &SchemaError{Kind: ErrUnknownFactory, Path: "topology.ops",
					Msg: fmt.Sprintf("unknown factory %q (have: %s)", op.Kind, factoryNames())}
			}
			if stateless {
				t.Stateless(op.ID, f(op), opts...)
			} else {
				t.Stateful(op.ID, f(op), opts...)
			}
		}
	}
	for _, c := range s.Connections {
		t.Connect(c[0], c[1])
	}
	return t.Build()
}
