package scenario

import (
	"fmt"
	"sort"
	"time"
)

// The scenario schema. A scenario file declares one topology, one
// deterministic workload, a timed event script and an assertions block,
// plus the substrates it runs on. Parse decodes and type-checks the
// YAML; Validate lint-checks the decoded scenario and returns every
// problem as a typed SchemaError, so `seep-scenario -validate` can
// report all of them at once.

// ErrorKind classifies a SchemaError.
type ErrorKind string

const (
	// ErrUnknownField: a key the schema does not define.
	ErrUnknownField ErrorKind = "unknown-field"
	// ErrMissingField: a required key is absent.
	ErrMissingField ErrorKind = "missing-field"
	// ErrBadValue: a key holds a value of the wrong type or range.
	ErrBadValue ErrorKind = "bad-value"
	// ErrUnknownEventKind: an event's kind is not in the event registry.
	ErrUnknownEventKind ErrorKind = "unknown-event-kind"
	// ErrUnknownOp: an event or assertion references an undeclared operator.
	ErrUnknownOp ErrorKind = "unknown-op"
	// ErrUndeclaredSink: a sink assertion references an operator that is
	// not a declared sink.
	ErrUndeclaredSink ErrorKind = "undeclared-sink"
	// ErrEventAfterEnd: an event is scheduled after the scenario ends.
	ErrEventAfterEnd ErrorKind = "event-after-end"
	// ErrUnknownFactory: a topology op names a factory kind the registry
	// does not have.
	ErrUnknownFactory ErrorKind = "unknown-factory"
	// ErrSubstrateRestricted: the scenario declares a substrate an event
	// kind cannot run on (e.g. partition-link outside Distributed).
	ErrSubstrateRestricted ErrorKind = "substrate-restricted"
	// ErrBadBound: a latency bound is non-positive or contradicts
	// another bound declared on the same sink.
	ErrBadBound ErrorKind = "bad-bound"
)

// SchemaError is one typed validation failure.
type SchemaError struct {
	Kind ErrorKind
	Path string // dotted location in the document, e.g. "events[2].kind"
	Msg  string
}

func (e *SchemaError) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.Path, e.Kind, e.Msg)
}

// Scenario is one decoded scenario file.
type Scenario struct {
	Name        string
	Description string
	Substrates  []string // "sim", "live", "dist"
	Seed        int64
	External    bool // external workers drive the workload (cmd/seep-worker)
	Duration    time.Duration

	Ops         []OpSpec
	Connections [][2]string // empty = linear chain in declaration order

	Options    Options
	Workload   *Workload
	Events     []Event
	Assertions Assertions
}

// OpSpec declares one operator of the topology.
type OpSpec struct {
	ID   string
	Kind string // factory name: source, sink, word-splitter, ...

	WindowMillis     int64 // word-counter, keyed-sum
	Parallelism      int
	MaxParallelism   int
	Cost             float64
	StateBytesPerKey int
}

// Options maps onto the seep.With* option set (substrate-aware: the
// executor only passes each option to substrates that accept it).
type Options struct {
	CheckpointInterval    time.Duration
	CheckpointIntervalSet bool
	DetectDelay           time.Duration
	TimerInterval         time.Duration
	RecoveryParallelism   int
	Workers               int // Distributed only
	BatchSize             int
	BatchLinger           time.Duration
	QueueBound            int   // bounded input queues, in tuples (live/dist)
	MemoryLimitBytes      int64 // per-instance state ceiling before spilling (live/dist)
	DeltaCheckpoints      bool  // incremental checkpoints (dist ships them over the wire)
	Policy                *PolicySpec
	ScaleIn               *ScaleInSpec
	VMPool                *VMPoolSpec // Simulated only
}

// VMPoolSpec configures the simulator's pre-allocated VM pool (§5.2).
// Without it, every recovery and scale out pays the raw IaaS
// provisioning delay in virtual time.
type VMPoolSpec struct {
	Size      int
	Handoff   time.Duration
	Provision time.Duration
}

// PolicySpec configures the scale-out policy (seep.Policy).
type PolicySpec struct {
	Threshold          float64
	ConsecutiveReports int
	ReportEvery        time.Duration
}

// ScaleInSpec configures the scale-in policy (seep.ScaleInPolicy).
type ScaleInSpec struct {
	LowWatermark       float64
	ConsecutiveReports int
	MinPartitions      int
}

// Workload is the deterministic seeded workload: `tuples` words drawn
// from a vocabulary of `keys` words named prefix+index, with key-skew
// (0 = uniform; larger = more mass on low-index words). The draw is a
// pure function of (seed, tuple index), so the expected per-key counts
// are computable without running anything — that is what exact-counts
// assertions compare against.
type Workload struct {
	Source    string // source op the tuples enter through
	Tuples    int
	Keys      int
	KeyPrefix string  // default "w"
	Skew      float64 // zipf-like exponent, default 0

	// SustainedOverload re-injects the base workload this many extra
	// times, evenly spaced across the scenario duration, to hold the
	// pipeline saturated. The re-injections continue the same
	// deterministic tuple sequence, so exact-counts oracles stay valid.
	SustainedOverload int

	cdfCache []float64 // lazily built skewed CDF (workload.go)
}

// Event is one timed chaos action.
type Event struct {
	At   time.Duration
	Kind string
	Op   string

	Partition int           // kill-worker/fail-instance/scale-out: which instance (default 0)
	Pi        int           // scale-out: resulting partitions (default 2)
	Merge     int           // scale-in: how many partitions to merge (default 2)
	Delay     time.Duration // slow-link
	Tuples    int           // inject-burst
}

// Assertions is the scenario's pass/fail contract.
type Assertions struct {
	ExactCounts *ExactCountsAssert
	Recovery    *RecoveryAssert
	SinkLatency *SinkLatencyAssert
	MaxLatency  *MaxLatencyAssert
	QueueDepth  *QueueDepthAssert
	SpilledKeys *SpilledKeysAssert
	Counters    []CounterAssert
	Parallelism map[string]int
	AllowErrors bool // default false: Metrics.Errors must be empty
}

// ExactCountsAssert: the per-key counts held by op's instances must
// equal the workload's expected counts exactly (exactly-once across
// every fault in the script).
type ExactCountsAssert struct {
	Op string
}

// RecoveryAssert bounds the completed recoveries: at least Min, at most
// Max (Max < 0 = unbounded), each completing within Deadline of its
// detection (0 = no deadline).
type RecoveryAssert struct {
	Min      int
	Max      int
	Deadline time.Duration
}

// SinkLatencyAssert bounds sink-observed end-to-end latency.
type SinkLatencyAssert struct {
	Sink string
	Max  time.Duration // bound on the latency maximum (0 = unchecked)
	P99  time.Duration // bound on the 99th percentile (0 = unchecked)
}

// MaxLatencyAssert: a hard per-record ceiling on sink-observed
// end-to-end latency — the scenario fails if any single record took
// longer than Ceiling. This is the assertion chaos scripts use to
// declare "never stall longer than X" across a fault (e.g. a
// coordinator failover must not freeze the data path); sink-latency by
// contrast bounds the summary statistics and allows a looser max.
type MaxLatencyAssert struct {
	Sink    string
	Ceiling time.Duration
}

// QueueDepthAssert bounds the peak bounded-queue occupancy observed on
// any edge, in batches. It only means something with a queue-bound
// option set: the assertion is that backpressure held the queues under
// Max instead of letting them grow with the overload.
type QueueDepthAssert struct {
	Max int64 // required, positive
}

// SpilledKeysAssert bounds the cumulative keys spilled to disk: at
// least Min (proof the memory ceiling actually engaged), at most Max
// (Max < 0 = unbounded).
type SpilledKeysAssert struct {
	Min int64
	Max int64 // < 0 = unbounded
}

// CounterAssert bounds one Metrics counter: sink-tuples,
// duplicates-dropped, recoveries, merges or checkpoints.
type CounterAssert struct {
	Name string
	Min  int64
	Max  int64 // < 0 = unbounded
}

// eventKinds maps each event kind to the substrates it can run on
// (nil = all).
var eventKinds = map[string][]string{
	"kill-worker":    nil,
	"fail-instance":  nil,
	"scale-out":      nil,
	"scale-in":       nil,
	"inject-burst":   nil,
	"slow-link":      {"live", "dist"},
	"partition-link": {"dist"},
	"heal-links":     {"live", "dist"},

	// Coordinator faults exercise the durable control plane: only the
	// Distributed runtime has a coordinator process to lose.
	"kill-coordinator":    {"dist"},
	"restart-coordinator": {"dist"},
}

// opFreeKinds are event kinds that act on the runtime as a whole, not
// on one operator.
var opFreeKinds = map[string]bool{
	"heal-links":          true,
	"kill-coordinator":    true,
	"restart-coordinator": true,
}

// EventKinds returns the registered event kinds, sorted.
func EventKinds() []string {
	kinds := make([]string, 0, len(eventKinds))
	for k := range eventKinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

var counterNames = map[string]bool{
	"sink-tuples":        true,
	"duplicates-dropped": true,
	"recoveries":         true,
	"merges":             true,
	"checkpoints":        true,
}

var substrateNames = map[string]bool{"sim": true, "live": true, "dist": true}

// Parse decodes one scenario document. Decode errors (bad YAML, wrong
// types, unknown fields) are returned immediately; call Validate for
// the full lint pass.
func Parse(src string) (*Scenario, error) {
	doc, err := parseYAML(src)
	if err != nil {
		return nil, err
	}
	d := &decoder{}
	root := d.mapAt(doc, "")
	if d.err != nil {
		return nil, d.err
	}
	s := &Scenario{}
	s.Name = root.str("name")
	s.Description = root.str("description")
	for i, v := range root.list("substrates") {
		s.Substrates = append(s.Substrates, d.scalarStr(v, fmt.Sprintf("substrates[%d]", i)))
	}
	s.Seed = root.int("seed")
	s.External = root.boolean("external")
	s.Duration = root.duration("duration")

	if topo := root.child("topology"); topo != nil {
		for i, v := range topo.list("ops") {
			om := d.mapAt(v, fmt.Sprintf("topology.ops[%d]", i))
			op := OpSpec{
				ID:               om.str("id"),
				Kind:             om.str("kind"),
				WindowMillis:     om.int("window-millis"),
				Parallelism:      int(om.int("parallelism")),
				MaxParallelism:   int(om.int("max-parallelism")),
				Cost:             om.float("cost"),
				StateBytesPerKey: int(om.int("state-bytes-per-key")),
			}
			om.done()
			s.Ops = append(s.Ops, op)
		}
		for i, v := range topo.list("connections") {
			pair, ok := v.([]any)
			if !ok || len(pair) != 2 {
				d.fail(fmt.Sprintf("topology.connections[%d]", i), "want a [from, to] pair")
				continue
			}
			s.Connections = append(s.Connections, [2]string{
				d.scalarStr(pair[0], fmt.Sprintf("topology.connections[%d][0]", i)),
				d.scalarStr(pair[1], fmt.Sprintf("topology.connections[%d][1]", i)),
			})
		}
		topo.done()
	}

	if om := root.child("options"); om != nil {
		if om.has("checkpoint-interval") {
			s.Options.CheckpointInterval = om.duration("checkpoint-interval")
			s.Options.CheckpointIntervalSet = true
		}
		s.Options.DetectDelay = om.duration("detect-delay")
		s.Options.TimerInterval = om.duration("timer-interval")
		s.Options.RecoveryParallelism = int(om.int("recovery-parallelism"))
		s.Options.Workers = int(om.int("workers"))
		s.Options.BatchSize = int(om.int("batch-size"))
		s.Options.BatchLinger = om.duration("batch-linger")
		s.Options.QueueBound = int(om.int("queue-bound"))
		s.Options.MemoryLimitBytes = om.int("memory-limit-bytes")
		s.Options.DeltaCheckpoints = om.boolean("delta-checkpoints")
		if pm := om.child("policy"); pm != nil {
			s.Options.Policy = &PolicySpec{
				Threshold:          pm.float("threshold"),
				ConsecutiveReports: int(pm.int("consecutive-reports")),
				ReportEvery:        pm.duration("report-every"),
			}
			pm.done()
		}
		if sm := om.child("scale-in"); sm != nil {
			s.Options.ScaleIn = &ScaleInSpec{
				LowWatermark:       sm.float("low-watermark"),
				ConsecutiveReports: int(sm.int("consecutive-reports")),
				MinPartitions:      int(sm.int("min-partitions")),
			}
			sm.done()
		}
		if vm := om.child("vm-pool"); vm != nil {
			s.Options.VMPool = &VMPoolSpec{
				Size:      int(vm.int("size")),
				Handoff:   vm.duration("handoff"),
				Provision: vm.duration("provision"),
			}
			vm.done()
		}
		om.done()
	}

	if wm := root.child("workload"); wm != nil {
		s.Workload = &Workload{
			Source:            wm.str("source"),
			Tuples:            int(wm.int("tuples")),
			Keys:              int(wm.int("keys")),
			KeyPrefix:         wm.str("key-prefix"),
			Skew:              wm.float("skew"),
			SustainedOverload: int(wm.int("sustained-overload")),
		}
		if s.Workload.KeyPrefix == "" {
			s.Workload.KeyPrefix = "w"
		}
		wm.done()
	}

	for i, v := range root.list("events") {
		em := d.mapAt(v, fmt.Sprintf("events[%d]", i))
		ev := Event{
			At:        em.duration("at"),
			Kind:      em.str("kind"),
			Op:        em.str("op"),
			Partition: int(em.int("partition")),
			Pi:        int(em.int("pi")),
			Merge:     int(em.int("merge")),
			Delay:     em.duration("delay"),
			Tuples:    int(em.int("tuples")),
		}
		em.done()
		s.Events = append(s.Events, ev)
	}

	if am := root.child("assertions"); am != nil {
		if em := am.child("exact-counts"); em != nil {
			s.Assertions.ExactCounts = &ExactCountsAssert{Op: em.str("op")}
			em.done()
		}
		if rm := am.child("recovery"); rm != nil {
			r := &RecoveryAssert{Min: int(rm.int("min")), Max: -1, Deadline: rm.duration("deadline")}
			if rm.has("max") {
				r.Max = int(rm.int("max"))
			}
			rm.done()
			s.Assertions.Recovery = r
		}
		if lm := am.child("sink-latency"); lm != nil {
			s.Assertions.SinkLatency = &SinkLatencyAssert{
				Sink: lm.str("sink"),
				Max:  lm.duration("max"),
				P99:  lm.duration("p99"),
			}
			lm.done()
		}
		if mm := am.child("max-latency"); mm != nil {
			s.Assertions.MaxLatency = &MaxLatencyAssert{
				Sink:    mm.str("sink"),
				Ceiling: mm.duration("ceiling"),
			}
			mm.done()
		}
		if qm := am.child("queue-depth"); qm != nil {
			q := &QueueDepthAssert{Max: -1}
			if qm.has("max") {
				q.Max = qm.int("max")
			}
			qm.done()
			s.Assertions.QueueDepth = q
		}
		if km := am.child("spilled-keys"); km != nil {
			k := &SpilledKeysAssert{Min: km.int("min"), Max: -1}
			if km.has("max") {
				k.Max = km.int("max")
			}
			km.done()
			s.Assertions.SpilledKeys = k
		}
		for i, v := range am.list("counters") {
			cm := d.mapAt(v, fmt.Sprintf("assertions.counters[%d]", i))
			c := CounterAssert{Name: cm.str("name"), Min: cm.int("min"), Max: -1}
			if cm.has("max") {
				c.Max = cm.int("max")
			}
			cm.done()
			s.Assertions.Counters = append(s.Assertions.Counters, c)
		}
		if pm := am.child("parallelism"); pm != nil {
			s.Assertions.Parallelism = make(map[string]int)
			for k := range pm.raw {
				s.Assertions.Parallelism[k] = int(pm.int(k))
			}
		}
		s.Assertions.AllowErrors = am.boolean("allow-errors")
		am.done()
	}
	root.done()
	if d.err != nil {
		return nil, d.err
	}
	return s, nil
}

// Validate lint-checks a decoded scenario and returns every problem.
func Validate(s *Scenario) []error {
	var errs []error
	add := func(kind ErrorKind, path, format string, args ...any) {
		errs = append(errs, &SchemaError{Kind: kind, Path: path, Msg: fmt.Sprintf(format, args...)})
	}

	if s.Name == "" {
		add(ErrMissingField, "name", "every scenario needs a name")
	}
	if s.Duration <= 0 {
		add(ErrBadValue, "duration", "scenario duration must be positive, got %v", s.Duration)
	}
	if len(s.Substrates) == 0 {
		add(ErrMissingField, "substrates", "declare at least one of sim, live, dist")
	}
	declared := make(map[string]bool, len(s.Substrates))
	for i, sub := range s.Substrates {
		if !substrateNames[sub] {
			add(ErrBadValue, fmt.Sprintf("substrates[%d]", i), "unknown substrate %q (want sim, live or dist)", sub)
			continue
		}
		declared[sub] = true
	}

	ops := make(map[string]OpSpec, len(s.Ops))
	sinks := make(map[string]bool)
	sources := make(map[string]bool)
	if len(s.Ops) == 0 {
		add(ErrMissingField, "topology.ops", "every scenario needs a topology")
	}
	for i, op := range s.Ops {
		path := fmt.Sprintf("topology.ops[%d]", i)
		if op.ID == "" {
			add(ErrMissingField, path+".id", "operator needs an id")
		}
		if _, dup := ops[op.ID]; dup {
			add(ErrBadValue, path+".id", "duplicate operator id %q", op.ID)
		}
		ops[op.ID] = op
		switch op.Kind {
		case "source":
			sources[op.ID] = true
		case "sink":
			sinks[op.ID] = true
		default:
			if !HasFactory(op.Kind) {
				add(ErrUnknownFactory, path+".kind", "unknown factory %q (have: %s)", op.Kind, factoryNames())
			}
		}
	}
	for i, c := range s.Connections {
		for j, id := range c {
			if _, ok := ops[id]; !ok {
				add(ErrUnknownOp, fmt.Sprintf("topology.connections[%d][%d]", i, j), "undeclared operator %q", id)
			}
		}
	}

	if s.External {
		if s.Workload != nil {
			add(ErrBadValue, "workload", "external scenarios cannot inject a workload (sources are bound in the worker registry)")
		}
		if s.Assertions.ExactCounts != nil {
			add(ErrBadValue, "assertions.exact-counts", "external scenarios cannot read operator state for exact counts")
		}
		if declared["sim"] || declared["live"] {
			add(ErrSubstrateRestricted, "substrates", "external scenarios run on Distributed only")
		}
	} else if s.Workload == nil {
		add(ErrMissingField, "workload", "every non-external scenario needs a workload")
	}
	if w := s.Workload; w != nil {
		if w.Source == "" {
			add(ErrMissingField, "workload.source", "workload needs a source operator")
		} else if !sources[w.Source] {
			add(ErrUnknownOp, "workload.source", "%q is not a declared source", w.Source)
		}
		if w.Tuples <= 0 {
			add(ErrBadValue, "workload.tuples", "want a positive tuple count, got %d", w.Tuples)
		}
		if w.Keys <= 0 {
			add(ErrBadValue, "workload.keys", "want a positive key count, got %d", w.Keys)
		}
		if w.Skew < 0 {
			add(ErrBadValue, "workload.skew", "skew must be non-negative, got %v", w.Skew)
		}
		if w.SustainedOverload < 0 {
			add(ErrBadValue, "workload.sustained-overload", "want a non-negative re-injection count, got %d", w.SustainedOverload)
		}
	}
	if s.Options.QueueBound < 0 {
		add(ErrBadValue, "options.queue-bound", "want a positive tuple bound, got %d", s.Options.QueueBound)
	}
	if s.Options.MemoryLimitBytes < 0 {
		add(ErrBadValue, "options.memory-limit-bytes", "want a positive byte ceiling, got %d", s.Options.MemoryLimitBytes)
	}

	for i, ev := range s.Events {
		path := fmt.Sprintf("events[%d]", i)
		allowed, known := eventKinds[ev.Kind]
		if !known {
			add(ErrUnknownEventKind, path+".kind", "unknown event kind %q (have: %v)", ev.Kind, EventKinds())
			continue
		}
		if ev.At < 0 {
			add(ErrBadValue, path+".at", "event time must be non-negative, got %v", ev.At)
		}
		if s.Duration > 0 && ev.At > s.Duration {
			add(ErrEventAfterEnd, path+".at", "event at %v is scheduled after the scenario ends at %v", ev.At, s.Duration)
		}
		if allowed != nil {
			ok := make(map[string]bool, len(allowed))
			for _, a := range allowed {
				ok[a] = true
			}
			for _, sub := range s.Substrates {
				if substrateNames[sub] && !ok[sub] {
					add(ErrSubstrateRestricted, path+".kind", "%s cannot run on substrate %q (supported: %v)", ev.Kind, sub, allowed)
				}
			}
		}
		if !opFreeKinds[ev.Kind] {
			if ev.Op == "" {
				add(ErrMissingField, path+".op", "%s needs an op", ev.Kind)
			} else if _, ok := ops[ev.Op]; !ok {
				add(ErrUnknownOp, path+".op", "undeclared operator %q", ev.Op)
			}
		}
		switch ev.Kind {
		case "scale-out":
			if ev.Pi != 0 && ev.Pi < 2 {
				add(ErrBadValue, path+".pi", "scale-out needs pi >= 2, got %d", ev.Pi)
			}
		case "scale-in":
			if ev.Merge != 0 && ev.Merge < 2 {
				add(ErrBadValue, path+".merge", "scale-in merges at least 2 partitions, got %d", ev.Merge)
			}
		case "slow-link":
			if ev.Delay <= 0 {
				add(ErrBadValue, path+".delay", "slow-link needs a positive delay")
			}
		case "inject-burst":
			if ev.Tuples <= 0 {
				add(ErrBadValue, path+".tuples", "inject-burst needs a positive tuple count")
			}
			if s.External {
				add(ErrBadValue, path+".kind", "external scenarios cannot inject bursts")
			} else if s.Workload != nil && ev.Op != "" && ev.Op != s.Workload.Source {
				add(ErrBadValue, path+".op", "bursts enter through the workload source %q, got %q", s.Workload.Source, ev.Op)
			}
		}
	}

	// Coordinator kill/restart must pair up in time order: a restart
	// with no dead coordinator has nothing to recover, and a scenario
	// ending with the coordinator dead cannot settle or snapshot.
	var coordEvents []int
	for i, ev := range s.Events {
		if ev.Kind == "kill-coordinator" || ev.Kind == "restart-coordinator" {
			coordEvents = append(coordEvents, i)
		}
	}
	sort.SliceStable(coordEvents, func(a, b int) bool {
		return s.Events[coordEvents[a]].At < s.Events[coordEvents[b]].At
	})
	coordDead := false
	for _, i := range coordEvents {
		path := fmt.Sprintf("events[%d].kind", i)
		switch s.Events[i].Kind {
		case "kill-coordinator":
			if coordDead {
				add(ErrBadValue, path, "the coordinator is already dead (unmatched kill-coordinator earlier in the script)")
			}
			coordDead = true
		case "restart-coordinator":
			if !coordDead {
				add(ErrBadValue, path, "restart-coordinator needs a kill-coordinator earlier in the script")
			}
			coordDead = false
		}
	}
	if coordDead {
		add(ErrBadValue, "events", "the script ends with the coordinator dead: every kill-coordinator needs a later restart-coordinator")
	}

	if ec := s.Assertions.ExactCounts; ec != nil {
		if ec.Op == "" {
			add(ErrMissingField, "assertions.exact-counts.op", "exact-counts needs an op")
		} else if _, ok := ops[ec.Op]; !ok {
			add(ErrUnknownOp, "assertions.exact-counts.op", "undeclared operator %q", ec.Op)
		}
	}
	if sl := s.Assertions.SinkLatency; sl != nil {
		if sl.Sink == "" {
			add(ErrMissingField, "assertions.sink-latency.sink", "sink-latency needs a sink")
		} else if !sinks[sl.Sink] {
			add(ErrUndeclaredSink, "assertions.sink-latency.sink", "%q is not a declared sink", sl.Sink)
		}
	}
	if ml := s.Assertions.MaxLatency; ml != nil {
		if ml.Sink == "" {
			add(ErrMissingField, "assertions.max-latency.sink", "max-latency needs a sink")
		} else if !sinks[ml.Sink] {
			add(ErrUndeclaredSink, "assertions.max-latency.sink", "%q is not a declared sink", ml.Sink)
		}
		if ml.Ceiling <= 0 {
			add(ErrBadBound, "assertions.max-latency.ceiling", "the hard ceiling must be positive, got %v", ml.Ceiling)
		} else if sl := s.Assertions.SinkLatency; sl != nil && sl.Sink == ml.Sink {
			// Both blocks bound the same sink: the summary bounds cannot
			// sit above the per-record hard ceiling.
			if sl.Max > ml.Ceiling {
				add(ErrBadBound, "assertions.sink-latency.max", "max bound %v is looser than the %v hard ceiling on the same sink", sl.Max, ml.Ceiling)
			}
			if sl.P99 > ml.Ceiling {
				add(ErrBadBound, "assertions.sink-latency.p99", "p99 bound %v exceeds the %v hard ceiling on the same sink", sl.P99, ml.Ceiling)
			}
		}
	}
	if qd := s.Assertions.QueueDepth; qd != nil {
		if qd.Max < 0 {
			add(ErrMissingField, "assertions.queue-depth.max", "queue-depth needs a max bound")
		} else if qd.Max == 0 {
			add(ErrBadBound, "assertions.queue-depth.max", "the queue-depth bound must be positive, got %d", qd.Max)
		}
		if declared["sim"] {
			add(ErrSubstrateRestricted, "assertions.queue-depth", "queue-depth reads backpressure gauges the simulator does not model (declare live or dist only)")
		}
	}
	if sk := s.Assertions.SpilledKeys; sk != nil {
		if sk.Min < 0 {
			add(ErrBadBound, "assertions.spilled-keys.min", "want a non-negative minimum, got %d", sk.Min)
		}
		if sk.Max >= 0 && sk.Max < sk.Min {
			add(ErrBadBound, "assertions.spilled-keys.max", "max %d contradicts min %d", sk.Max, sk.Min)
		}
		if sk.Min > 0 && s.Options.MemoryLimitBytes <= 0 {
			add(ErrBadValue, "assertions.spilled-keys.min", "nothing spills without options.memory-limit-bytes: a positive minimum cannot hold")
		}
		if declared["sim"] {
			add(ErrSubstrateRestricted, "assertions.spilled-keys", "spilled-keys reads spill counters the simulator does not model (declare live or dist only)")
		}
	}
	for i, c := range s.Assertions.Counters {
		if !counterNames[c.Name] {
			names := make([]string, 0, len(counterNames))
			for n := range counterNames {
				names = append(names, n)
			}
			sort.Strings(names)
			add(ErrBadValue, fmt.Sprintf("assertions.counters[%d].name", i), "unknown counter %q (have: %v)", c.Name, names)
		}
	}
	for op := range s.Assertions.Parallelism {
		if _, ok := ops[op]; !ok {
			add(ErrUnknownOp, "assertions.parallelism."+op, "undeclared operator %q", op)
		}
	}
	return errs
}

// --- decoding helpers -------------------------------------------------

// decoder accumulates the first decode error; helpers become no-ops
// after a failure so call sites stay linear.
type decoder struct{ err error }

func (d *decoder) fail(path, format string, args ...any) {
	if d.err == nil {
		d.err = &SchemaError{Kind: ErrBadValue, Path: path, Msg: fmt.Sprintf(format, args...)}
	}
}

func (d *decoder) failKind(kind ErrorKind, path, format string, args ...any) {
	if d.err == nil {
		d.err = &SchemaError{Kind: kind, Path: path, Msg: fmt.Sprintf(format, args...)}
	}
}

// objMap wraps one mapping and tracks which keys were consumed, so
// done() can flag unknown fields.
type objMap struct {
	d    *decoder
	path string
	raw  map[string]any
	used map[string]bool
}

func (d *decoder) mapAt(v any, path string) *objMap {
	m, ok := v.(map[string]any)
	if !ok {
		d.fail(path, "want a mapping, got %T", v)
		m = map[string]any{}
	}
	return &objMap{d: d, path: path, raw: m, used: make(map[string]bool)}
}

func (m *objMap) key(k string) string {
	if m.path == "" {
		return k
	}
	return m.path + "." + k
}

func (m *objMap) has(k string) bool { _, ok := m.raw[k]; return ok }

func (m *objMap) take(k string) (any, bool) {
	v, ok := m.raw[k]
	m.used[k] = true
	return v, ok
}

// done flags any key the schema did not consume.
func (m *objMap) done() {
	for k := range m.raw {
		if !m.used[k] {
			m.d.failKind(ErrUnknownField, m.key(k), "unknown field")
		}
	}
}

func (m *objMap) str(k string) string {
	v, ok := m.take(k)
	if !ok || v == nil {
		return ""
	}
	s, ok := v.(string)
	if !ok {
		m.d.fail(m.key(k), "want a string, got %v (%T)", v, v)
		return ""
	}
	return s
}

func (m *objMap) int(k string) int64 {
	v, ok := m.take(k)
	if !ok || v == nil {
		return 0
	}
	n, ok := v.(int64)
	if !ok {
		m.d.fail(m.key(k), "want an integer, got %v (%T)", v, v)
		return 0
	}
	return n
}

func (m *objMap) float(k string) float64 {
	v, ok := m.take(k)
	if !ok || v == nil {
		return 0
	}
	switch n := v.(type) {
	case float64:
		return n
	case int64:
		return float64(n)
	}
	m.d.fail(m.key(k), "want a number, got %v (%T)", v, v)
	return 0
}

func (m *objMap) boolean(k string) bool {
	v, ok := m.take(k)
	if !ok || v == nil {
		return false
	}
	b, ok := v.(bool)
	if !ok {
		m.d.fail(m.key(k), "want true or false, got %v (%T)", v, v)
		return false
	}
	return b
}

func (m *objMap) duration(k string) time.Duration {
	v, ok := m.take(k)
	if !ok || v == nil {
		return 0
	}
	s, ok := v.(string)
	if !ok {
		m.d.fail(m.key(k), "want a duration such as \"500ms\", got %v (%T)", v, v)
		return 0
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		m.d.fail(m.key(k), "bad duration %q: %v", s, err)
		return 0
	}
	return d
}

func (m *objMap) list(k string) []any {
	v, ok := m.take(k)
	if !ok || v == nil {
		return nil
	}
	l, ok := v.([]any)
	if !ok {
		m.d.fail(m.key(k), "want a list, got %v (%T)", v, v)
		return nil
	}
	return l
}

func (m *objMap) child(k string) *objMap {
	v, ok := m.take(k)
	if !ok || v == nil {
		return nil
	}
	return m.d.mapAt(v, m.key(k))
}

func (d *decoder) scalarStr(v any, path string) string {
	s, ok := v.(string)
	if !ok {
		d.fail(path, "want a string, got %v (%T)", v, v)
		return ""
	}
	return s
}
