// Package analysis is seep's static-analysis suite: six passes that
// machine-check invariants the codebase previously stated only in
// prose — lock preconditions, the coordinator's journal-before-effect
// discipline, timer hygiene, wire byte-determinism, atomic/plain access
// mixing and the option/substrate registry.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is built on the standard library
// alone, so the suite needs no module downloads: the driver loads
// packages with `go list`, parses them with go/parser and type-checks
// them with go/types using the stdlib source importer.
//
// # Annotation grammar
//
// Analyzers read machine-readable directives from doc comments. A
// directive is a comment line of the form
//
//	// seep:<verb> [args...]
//
// (the space after // is optional). Verbs:
//
//	seep:locks <path> [<path>...]
//	    On a function or method: every listed lock must be held on
//	    entry. Each <path> is <root>.<field>[.<field>...] where <root>
//	    names the receiver or a parameter of the annotated function
//	    (e.g. "e.mu", "n.mu"). Checked by the heldlock analyzer.
//
//	seep:blocking
//	    On a function or method: it may block on flow control (credit
//	    ledgers, backpressure waits). heldlock flags calls to blocking
//	    functions made while an annotated mutex is held.
//
//	seep:journaled
//	    On a Coordinator struct field: the field is authoritative
//	    control-plane state reconstructed from the write-ahead journal.
//	    Checked by the journalfirst analyzer.
//
//	seep:replay
//	    On a function or method: it applies journal-derived state
//	    during replay/reconciliation, so journalfirst does not require
//	    a fresh journal append before its sends.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and on the command line.
	Name string
	// Doc is a one-paragraph description (first line is the summary).
	Doc string
	// Run applies the pass to one package, reporting findings through
	// pass.Report. The returned error aborts the whole run (reserved
	// for internal failures, not findings).
	Run func(pass *Pass) error
}

// Pass carries one package's parsed and type-checked form to an
// analyzer, plus the report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// NewPass assembles a Pass whose findings append to diags.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, diags *[]Diagnostic) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, diags: diags}
}

// Directive is one parsed seep: annotation.
type Directive struct {
	// Verb is the word after "seep:" (locks, blocking, journaled,
	// replay).
	Verb string
	// Args are the whitespace-separated arguments after the verb.
	Args []string
	// Pos locates the directive comment (for diagnostics about the
	// annotation itself).
	Pos token.Pos
}

// ParseDirectives extracts seep: directives from a comment group.
func ParseDirectives(doc *ast.CommentGroup) []Directive {
	if doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if !strings.HasPrefix(text, "seep:") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(text, "seep:"))
		if len(fields) == 0 {
			continue
		}
		// The verb may be glued to the colon ("seep:locks e.mu").
		out = append(out, Directive{Verb: fields[0], Args: fields[1:], Pos: c.Pos()})
	}
	return out
}

// FuncDirectives returns the seep: directives on a function
// declaration, looking at both the doc comment and, for grouped decls,
// line comments directly above.
func FuncDirectives(fn *ast.FuncDecl) []Directive {
	return ParseDirectives(fn.Doc)
}

// All returns the full suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Heldlock,
		Journalfirst,
		Timerleak,
		Wiredet,
		Atomicmix,
		Optmatrix,
	}
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
