package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Atomicmix flags struct fields that are accessed through sync/atomic
// functions in one place and with plain reads or writes in another —
// the two access paths have different memory models, so the plain side
// races the atomic side no matter which goroutine wins.
var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc: `flag fields accessed both via sync/atomic and plainly

A field passed as &x.f to sync/atomic's Add/Load/Store/Swap/
CompareAndSwap functions is part of an atomic protocol: every other
access to it must go through sync/atomic too. Any plain read, write or
address-take elsewhere in the package is reported. (Typed atomics —
atomic.Int64 and friends — make this mistake unrepresentable; prefer
them for new fields.)`,
	Run: runAtomicmix,
}

// atomicFns are the sync/atomic function-name prefixes whose first
// argument is the target pointer.
var atomicFnPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"}

func isAtomicFn(name string) bool {
	for _, p := range atomicFnPrefixes {
		if strings.HasPrefix(name, p) && len(name) > len(p) {
			return true
		}
	}
	return false
}

func runAtomicmix(pass *Pass) error {
	// Pass 1: fields used atomically, and the selector nodes consumed
	// by those atomic calls (exempt from pass 2).
	atomicFields := make(map[*types.Var]token.Pos) // field -> first atomic use
	consumed := make(map[*ast.SelectorExpr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			f := calleeFunc(pass.TypesInfo, call)
			if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" || !isAtomicFn(f.Name()) {
				return true
			}
			unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || unary.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if v := fieldVar(pass.TypesInfo, sel); v != nil {
				if _, seen := atomicFields[v]; !seen {
					atomicFields[v] = sel.Pos()
				}
				consumed[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: any other selection of those fields is a plain access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || consumed[sel] {
				return true
			}
			v := fieldVar(pass.TypesInfo, sel)
			if v == nil {
				return true
			}
			if first, ok := atomicFields[v]; ok {
				pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic (first at %s) and must not be read or written plainly",
					v.Name(), pass.Fset.Position(first))
			}
			return true
		})
	}
	return nil
}
