package analysis

import (
	"go/ast"
	"go/token"
)

// Timerleak flags time.After timer churn: the PR 5 leak class, where a
// loop (or an abandonable select) allocates a runtime timer per
// iteration that lives until its deadline fires.
var Timerleak = &Analyzer{
	Name: "timerleak",
	Doc: `flag time.After in loops and in aborted selects

time.After allocates a runtime timer that is only released when it
fires. Two patterns churn or strand those timers:

  - time.After inside a for/range body: one timer per iteration, each
    alive until its deadline, even after the loop moved on.
  - <-time.After(d) as a case of a select with other cases: when
    another case wins, the timer is abandoned until d elapses.

Both should hoist a time.NewTimer and Stop/Reset it (the PR 5
coordinator fix; see Coordinator.call for the canonical shape).`,
	Run: runTimerleak,
}

func runTimerleak(pass *Pass) error {
	flagged := make(map[*ast.CallExpr]bool)
	for _, file := range pass.Files {
		// Rule 1: time.After lexically inside a loop body.
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || !isPkgCall(pass.TypesInfo, call, "time", "After") {
					return true
				}
				if !flagged[call] {
					flagged[call] = true
					pass.Reportf(call.Pos(), "time.After inside a loop allocates one timer per iteration; hoist a time.NewTimer and Reset it")
				}
				return true
			})
			return true
		})
		// Rule 2: <-time.After as one case of a multi-case select.
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok || len(sel.Body.List) < 2 {
				return true
			}
			for _, clause := range sel.Body.List {
				comm, ok := clause.(*ast.CommClause)
				if !ok || comm.Comm == nil {
					continue
				}
				call := timerRecv(comm.Comm)
				if call == nil || !isPkgCall(pass.TypesInfo, call, "time", "After") {
					continue
				}
				if !flagged[call] {
					flagged[call] = true
					pass.Reportf(call.Pos(), "select can abandon <-time.After, leaving the timer allocated until it fires; use a stopped time.NewTimer with a deferred Stop")
				}
			}
			return true
		})
	}
	return nil
}

// timerRecv extracts the call of a `<-call(...)` receive in a select
// comm statement (plain receive, assignment or declaration form).
func timerRecv(comm ast.Stmt) *ast.CallExpr {
	var expr ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	unary, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || unary.Op != token.ARROW {
		return nil
	}
	call, _ := ast.Unparen(unary.X).(*ast.CallExpr)
	return call
}
