package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Heldlock replaces the prose "Caller holds e.mu" comments with checked
// // seep:locks annotations: every caller of an annotated function must
// hold (or itself declare) the lock, and nothing may block on a channel
// send or a flow-control wait while an annotated mutex is held — the
// PR 8 emitMu deadlock class.
var Heldlock = &Analyzer{
	Name: "heldlock",
	Doc: `check // seep:locks preconditions and flag blocking under locks

A function annotated // seep:locks <root>.<field>... (root names its
receiver or a parameter, e.g. "e.mu" or "n.mu") requires that lock held
on entry. The analyzer checks, lexically within each caller:

  - every call to an annotated function happens either inside a
    function declaring the same lock or after a matching .Lock()/
    .RLock() with no intervening .Unlock()/.RUnlock();
  - an annotated function never re-locks a lock it declares held;
  - while any annotated mutex is held, no blocking channel send and no
    call to a // seep:blocking function (credit-ledger waits) occurs.
    Sends inside a select with a default or an alternative case are
    exempt: the author wrote an escape path, which is exactly what the
    deadlocking bare send lacked.

The check is lexical per function body: function literals are separate
scopes (their bodies usually run on other goroutines), and control flow
between Lock and Unlock is approximated by source order — an Unlock
immediately followed by return/break/continue/panic is an early-exit
path and does not end the lock region for the code after its block.`,
	Run: runHeldlock,
}

// lockSpec is one resolved seep:locks requirement of a function.
type lockSpec struct {
	rootSlot int      // -1 = receiver, else parameter index
	rootName string   // annotation spelling ("e")
	path     []string // field path ("mu")
	field    *types.Var
	raw      string // original annotation text ("e.mu")
}

func runHeldlock(pass *Pass) error {
	annotated := make(map[*types.Func][]lockSpec)
	blocking := make(map[*types.Func]bool)
	annotatedMutex := make(map[*types.Var]bool)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj == nil {
				continue
			}
			for _, d := range FuncDirectives(fn) {
				switch d.Verb {
				case "blocking":
					blocking[obj] = true
				case "locks":
					if len(d.Args) == 0 {
						pass.Reportf(d.Pos, "seep:locks needs at least one <root>.<field> argument")
						continue
					}
					for _, arg := range d.Args {
						spec, err := resolveLockSpec(obj, arg)
						if err != nil {
							pass.Reportf(d.Pos, "seep:locks %s: %v", arg, err)
							continue
						}
						annotated[obj] = append(annotated[obj], spec)
						if spec.field != nil {
							annotatedMutex[spec.field] = true
						}
					}
				}
			}
		}
	}
	if len(annotated) == 0 && len(blocking) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, scope := range funcScopes(file) {
			checkScope(pass, scope, annotated, blocking, annotatedMutex)
		}
	}
	return nil
}

// resolveLockSpec parses "e.mu" against fn's signature, resolving the
// final field so annotated mutexes can be recognised at lock sites.
func resolveLockSpec(fn *types.Func, arg string) (lockSpec, error) {
	parts := strings.Split(arg, ".")
	if len(parts) < 2 {
		return lockSpec{}, fmt.Errorf("want <root>.<field>[.<field>...]")
	}
	sig := fn.Type().(*types.Signature)
	spec := lockSpec{rootSlot: -2, rootName: parts[0], path: parts[1:], raw: arg}
	var rootType types.Type
	if recv := sig.Recv(); recv != nil && recv.Name() == parts[0] {
		spec.rootSlot = -1
		rootType = recv.Type()
	} else {
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i).Name() == parts[0] {
				spec.rootSlot = i
				rootType = sig.Params().At(i).Type()
				break
			}
		}
	}
	if spec.rootSlot == -2 {
		return lockSpec{}, fmt.Errorf("%q is not the receiver or a parameter of %s", parts[0], fn.Name())
	}
	t := rootType
	for _, name := range spec.path {
		obj, _, _ := types.LookupFieldOrMethod(t, true, fn.Pkg(), name)
		v, ok := obj.(*types.Var)
		if !ok {
			return lockSpec{}, fmt.Errorf("no field %q on %s", name, t)
		}
		spec.field = v
		t = v.Type()
	}
	return spec, nil
}

// hlEvent is one ordered occurrence inside a scope.
type hlEvent struct {
	pos  token.Pos
	kind int // 0 lock, 1 unlock, 2 annotated call, 3 send, 4 blocking call
	// lock/unlock: canon key + field of the mutex operand.
	canon string
	field *types.Var
	// annotated call: required locks (canon -> spelling) and callee.
	requires map[string]string
	callee   string
	// a requirement whose root expression could not be canonicalised.
	unverifiable string
}

func checkScope(pass *Pass, scope funcScope, annotated map[*types.Func][]lockSpec, blocking map[*types.Func]bool, annotatedMutex map[*types.Var]bool) {
	info := pass.TypesInfo

	// Entry state: a declaration scope of an annotated function starts
	// with its declared locks held (literals start bare).
	held := make(map[string]*types.Var) // canon -> mutex field (nil for locals)
	declared := make(map[string]bool)
	var ownObj *types.Func
	if scope.lit == nil && scope.decl != nil {
		ownObj, _ = info.Defs[scope.decl.Name].(*types.Func)
		for _, spec := range annotated[ownObj] {
			canon := entryCanon(info, scope.decl, spec)
			if canon != "" {
				held[canon] = spec.field
				declared[canon] = true
			}
		}
	}

	var events []hlEvent
	deferred := make(map[ast.Node]bool)
	exemptSend := make(map[ast.Stmt]bool)
	abandoning := make(map[*ast.CallExpr]bool)
	scopeWalk(scope, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			deferred[s.Call] = true
		case *ast.BlockStmt:
			markAbandoning(s.List, abandoning)
		case *ast.CaseClause:
			markAbandoning(s.Body, abandoning)
		case *ast.CommClause:
			markAbandoning(s.Body, abandoning)
		case *ast.SelectStmt:
			// A send in a select with an alternative way out (default or
			// another case) is a designed fallback, not the bare send
			// that wedges under a lock.
			if len(s.Body.List) >= 2 {
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						if send, ok := cc.Comm.(*ast.SendStmt); ok {
							exemptSend[send] = true
						}
					}
				}
			}
		case *ast.SendStmt:
			if !exemptSend[s] {
				events = append(events, hlEvent{pos: s.Pos(), kind: 3})
			}
		case *ast.CallExpr:
			for _, ev := range callEvents(info, s, deferred[s], annotated, blocking) {
				if ev.kind == 1 && abandoning[s] {
					// Early-exit unlock (mu.Unlock(); return): the main
					// flow after this block still holds the lock.
					continue
				}
				events = append(events, ev)
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	funcName := "function literal"
	if scope.decl != nil {
		funcName = scope.decl.Name.Name
		if scope.lit != nil {
			funcName = "function literal in " + funcName
		}
	}

	for _, ev := range events {
		switch ev.kind {
		case 0:
			if declared[ev.canon] && scope.lit == nil {
				pass.Reportf(ev.pos, "%s declares this lock held on entry (// seep:locks) but locks it again: guaranteed self-deadlock on sync.Mutex", funcName)
				continue
			}
			held[ev.canon] = ev.field
		case 1:
			delete(held, ev.canon)
		case 2:
			for canon, spelling := range ev.requires {
				if _, ok := held[canon]; !ok {
					pass.Reportf(ev.pos, "call to %s requires %s held (// seep:locks); %s neither holds it at this point nor declares it", ev.callee, spelling, funcName)
				}
			}
			if ev.unverifiable != "" {
				pass.Reportf(ev.pos, "call to %s requires %s held (// seep:locks) but the lock owner is not a simple variable path here; restructure the call so the precondition is checkable", ev.callee, ev.unverifiable)
			}
		case 3, 4:
			for canon, field := range held {
				if field == nil || !annotatedMutex[field] {
					continue
				}
				what := "blocking channel send"
				if ev.kind == 4 {
					what = "call to " + ev.callee + " (// seep:blocking)"
				}
				pass.Reportf(ev.pos, "%s while %s holds annotated mutex %s: the emitMu deadlock class — a stalled wait under a lock wedges every path that needs the lock; move it past the unlock or make it non-blocking", what, funcName, canonSpelling(canon))
			}
		}
	}
}

// markAbandoning records calls (in statement position) whose next
// sibling statement terminates the flow — the early-exit unlock shape.
func markAbandoning(list []ast.Stmt, out map[*ast.CallExpr]bool) {
	for i, stmt := range list {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok || i+1 >= len(list) {
			continue
		}
		call, ok := ast.Unparen(es.X).(*ast.CallExpr)
		if !ok {
			continue
		}
		switch next := list[i+1].(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			out[call] = true
		case *ast.ExprStmt:
			if c, ok := ast.Unparen(next.X).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "panic" {
					out[call] = true
				}
			}
		}
	}
}

// callEvents classifies one call expression into lock/unlock/annotated/
// blocking events.
func callEvents(info *types.Info, call *ast.CallExpr, isDeferred bool, annotated map[*types.Func][]lockSpec, blocking map[*types.Func]bool) []hlEvent {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if isSel {
		name := sel.Sel.Name
		if name == "Lock" || name == "RLock" || name == "Unlock" || name == "RUnlock" {
			if tv, ok := info.Types[sel.X]; ok && isMutexType(tv.Type) {
				if isDeferred {
					// defer mu.Unlock() holds to scope end; defer
					// mu.Lock() would be bizarre — ignore both.
					return nil
				}
				canon := canonPath(info, sel.X)
				if canon == "" {
					return nil
				}
				kind := 0
				if name == "Unlock" || name == "RUnlock" {
					kind = 1
				}
				var field *types.Var
				if fsel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
					field = fieldVar(info, fsel)
				}
				return []hlEvent{{pos: call.Pos(), kind: kind, canon: canon, field: field}}
			}
		}
	}
	callee := calleeFunc(info, call)
	if callee == nil {
		return nil
	}
	if blocking[callee] {
		return []hlEvent{{pos: call.Pos(), kind: 4, callee: callee.Name()}}
	}
	specs := annotated[callee]
	if len(specs) == 0 {
		return nil
	}
	ev := hlEvent{pos: call.Pos(), kind: 2, callee: callee.Name(), requires: make(map[string]string)}
	for _, spec := range specs {
		var rootExpr ast.Expr
		if spec.rootSlot == -1 {
			if !isSel {
				continue // method value or same-package unqualified call
			}
			rootExpr = sel.X
		} else if spec.rootSlot < len(call.Args) {
			rootExpr = call.Args[spec.rootSlot]
		}
		if rootExpr == nil {
			continue
		}
		canon := canonPath(info, rootExpr)
		if canon == "" {
			ev.unverifiable = spec.raw
			continue
		}
		canon += "." + strings.Join(spec.path, ".")
		ev.requires[canon] = renderLock(rootExpr, spec.path)
	}
	return []hlEvent{ev}
}

// entryCanon renders the canonical key of a declared lock from the
// annotated function's own receiver/parameter identifiers.
func entryCanon(info *types.Info, fn *ast.FuncDecl, spec lockSpec) string {
	var ident *ast.Ident
	if spec.rootSlot == -1 {
		if len(fn.Recv.List) > 0 && len(fn.Recv.List[0].Names) > 0 {
			ident = fn.Recv.List[0].Names[0]
		}
	} else {
		i := 0
		for _, f := range fn.Type.Params.List {
			for _, name := range f.Names {
				if i == spec.rootSlot {
					ident = name
				}
				i++
			}
		}
	}
	if ident == nil {
		return ""
	}
	obj := info.Defs[ident]
	if obj == nil {
		return ""
	}
	return fmt.Sprintf("%s@%d.%s", obj.Name(), obj.Pos(), strings.Join(spec.path, "."))
}

// renderLock spells a required lock for diagnostics ("e.mu").
func renderLock(root ast.Expr, path []string) string {
	base := "?"
	switch x := ast.Unparen(root).(type) {
	case *ast.Ident:
		base = x.Name
	case *ast.SelectorExpr:
		base = x.Sel.Name
	}
	return base + "." + strings.Join(path, ".")
}

// canonSpelling strips the @pos disambiguator for display.
func canonSpelling(canon string) string {
	if i := strings.IndexByte(canon, '@'); i >= 0 {
		if j := strings.IndexByte(canon[i:], '.'); j >= 0 {
			return canon[:i] + canon[i+j:]
		}
		return canon[:i]
	}
	return canon
}

// isMutexType reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	return typeIsNamed(t, "sync", "Mutex") || typeIsNamed(t, "sync", "RWMutex")
}
