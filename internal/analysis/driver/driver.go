// Package driver runs the seep analysis suite over packages, in the
// two ways the tool is invoked: standalone (`seep-lint ./...`, loading
// through go list + the source importer) and as a `go vet -vettool`
// backend (one vet.cfg per package, type-checked from the build's own
// export data). Both paths produce the same diagnostics; only the
// loading differs.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"seep/internal/analysis"
	"seep/internal/analysis/load"
)

// Run applies analyzers to one loaded package, appending findings to
// diags.
func Run(p *load.Package, analyzers []*analysis.Analyzer, diags *[]analysis.Diagnostic) error {
	for _, a := range analyzers {
		pass := analysis.NewPass(a, p.Fset, p.Files, p.Pkg, p.Info, diags)
		if err := a.Run(pass); err != nil {
			return fmt.Errorf("%s: %s: %v", a.Name, p.ImportPath, err)
		}
	}
	return nil
}

// Standalone loads the packages matching patterns and runs analyzers
// over each, printing sorted diagnostics to w. It returns the number of
// findings; a non-nil error means the load or an analyzer itself
// failed, not that findings exist.
func Standalone(patterns []string, analyzers []*analysis.Analyzer, asJSON bool, w io.Writer) (int, error) {
	pkgs, err := load.Packages(patterns...)
	if err != nil {
		return 0, err
	}
	var diags []analysis.Diagnostic
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(w, "seep-lint: typecheck %s: %v\n", p.ImportPath, terr)
		}
		if len(p.TypeErrors) > 0 {
			return 0, fmt.Errorf("%s does not type-check; fix the build first", p.ImportPath)
		}
		if err := Run(p, analyzers, &diags); err != nil {
			return 0, err
		}
	}
	print(diags, asJSON, w)
	return len(diags), nil
}

// VetConfig mirrors cmd/go's vetConfig: the JSON handed to a -vettool
// for each package. Fields the suite does not need are omitted; unknown
// fields in the input are ignored by encoding/json.
type VetConfig struct {
	ID            string
	Compiler      string
	Dir           string
	ImportPath    string
	GoFiles       []string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string
	ModulePath    string
	ModuleVersion string

	SucceedOnTypecheckFailure bool
}

// VetCfg implements the go vet unit-check protocol for one package:
// parse cfg's GoFiles, type-check against the build's export data,
// write the (empty — the suite has no cross-package facts) vetx output
// so the go command can cache the run, and report findings to w.
// The int result is the number of findings.
func VetCfg(cfgPath string, analyzers []*analysis.Analyzer, asJSON bool, w io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parse %s: %v", cfgPath, err)
	}

	// The facts file must exist even on failure paths, or the go
	// command re-runs the tool on every build.
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, writeVetx()
			}
			return 0, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: vetImporter(fset, &cfg)}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx()
		}
		return 0, err
	}
	if err := writeVetx(); err != nil {
		return 0, err
	}
	if cfg.VetxOnly {
		// Dependency-only run: the go command wants facts, not findings.
		return 0, nil
	}

	// go vet also hands us the package's test variants; the suite's
	// contract covers shipped code only (test-side time.After timeout
	// guards and lock games die with the test process).
	var checked []*ast.File
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			checked = append(checked, f)
		}
	}

	p := &load.Package{ImportPath: cfg.ImportPath, Dir: cfg.Dir, Fset: fset, Files: checked, Pkg: pkg, Info: info}
	var diags []analysis.Diagnostic
	if err := Run(p, analyzers, &diags); err != nil {
		return 0, err
	}
	print(diags, asJSON, w)
	return len(diags), nil
}

// vetImporter resolves imports the way the compiler did: source import
// path -> canonical package path (ImportMap) -> export data file
// (PackageFile), decoded by the gc importer.
func vetImporter(fset *token.FileSet, cfg *VetConfig) types.Importer {
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (stale vet config?)", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.(types.ImporterFrom).ImportFrom(path, cfg.Dir, 0)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// print emits diagnostics sorted by position, plain or as a JSON array.
func print(diags []analysis.Diagnostic, asJSON bool, w io.Writer) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Offset != b.Pos.Offset {
			return a.Pos.Offset < b.Pos.Offset
		}
		return a.Analyzer < b.Analyzer
	})
	if asJSON {
		type jsonDiag struct {
			Analyzer string `json:"analyzer"`
			Position string `json:"position"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, len(diags))
		for i, d := range diags {
			out[i] = jsonDiag{Analyzer: d.Analyzer, Position: d.Pos.String(), Message: d.Message}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "\t")
		enc.Encode(out)
		return
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s\n", d.String())
	}
}
