// Package heldlock exercises the heldlock analyzer: seep:locks
// preconditions, the early-exit unlock shape, blocking sends under an
// annotated mutex and the select escape-path exemptions.
package heldlock

import "sync"

type engine struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	out  chan int
	wake chan struct{}
}

// rebuild requires the engine lock.
//
// seep:locks e.mu
func (e *engine) rebuild() {}

// inspect requires a read lock.
//
// seep:locks e.rw
func (e *engine) inspect() {}

// waitCredit models a flow-control wait.
//
// seep:blocking
func (e *engine) waitCredit() {}

// helper has a lock precondition on a parameter, not the receiver.
//
// seep:locks e.mu
func touch(e *engine) {}

func goodCaller(e *engine) {
	e.mu.Lock()
	e.rebuild()
	touch(e)
	e.mu.Unlock()
	e.rebuild() // want `call to rebuild requires e\.mu held`
}

func goodEarlyExit(e *engine, bad bool) {
	e.mu.Lock()
	if bad {
		e.mu.Unlock()
		return
	}
	e.rebuild() // the early-exit unlock above must not end the region
	e.mu.Unlock()
}

// declaredCaller re-declares the lock instead of taking it.
//
// seep:locks e.mu
func declaredCaller(e *engine) {
	e.rebuild()
	touch(e)
}

// doubleLock re-locks its own declared lock.
//
// seep:locks e.mu
func doubleLock(e *engine) {
	e.mu.Lock() // want `declares this lock held on entry`
	e.rebuild()
	e.mu.Unlock()
}

func wrongLock(e *engine) {
	e.rw.RLock()
	e.inspect()
	e.rebuild() // want `call to rebuild requires e\.mu held`
	e.rw.RUnlock()
}

func sendUnderLock(e *engine, v int) {
	e.mu.Lock()
	e.out <- v // want `blocking channel send while sendUnderLock holds annotated mutex e\.mu`
	e.mu.Unlock()
	e.out <- v // after the unlock: fine
}

func sendWithEscape(e *engine, v int) {
	e.mu.Lock()
	select {
	case e.out <- v: // escape path below: exempt
	default:
	}
	select {
	case e.out <- v: // alternative case: exempt
	case <-e.wake:
	}
	e.mu.Unlock()
}

func blockingUnderLock(e *engine) {
	e.mu.Lock()
	e.waitCredit() // want `call to waitCredit \(// seep:blocking\) while blockingUnderLock holds annotated mutex e\.mu`
	e.mu.Unlock()
	e.waitCredit()
}

func sendUnderLocalLock(v int) {
	// A mutex that is not the subject of any seep:locks annotation does
	// not restrict sends.
	var mu sync.Mutex
	ch := make(chan int, 1)
	mu.Lock()
	ch <- v
	mu.Unlock()
}

func literalScope(e *engine) {
	e.mu.Lock()
	f := func() {
		e.rebuild() // want `call to rebuild requires e\.mu held`
	}
	f()
	e.mu.Unlock()
}
