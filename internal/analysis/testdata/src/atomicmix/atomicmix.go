// Package atomicmix exercises the atomicmix analyzer: fields accessed
// both through sync/atomic and plainly.
package atomicmix

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
	typed  atomic.Int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.misses, 1)
}

func (c *counters) read() int64 {
	return atomic.LoadInt64(&c.hits) + c.misses // want `field misses is accessed with sync/atomic`
}

func (c *counters) reset() {
	c.hits = 0 // want `field hits is accessed with sync/atomic`
	atomic.StoreInt64(&c.misses, 0)
}

func (c *counters) typedOnly() int64 {
	// Typed atomics make mixing unrepresentable; plain method calls on
	// them are not plain accesses of an atomic word.
	c.typed.Add(1)
	return c.typed.Load()
}

type plainOnly struct {
	n int
}

func (p *plainOnly) inc() { p.n++ } // never touched atomically: clean
