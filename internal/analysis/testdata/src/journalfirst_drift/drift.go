// Package drift exercises journalfirst's drift guard: a Coordinator
// struct in a dist package with no seep:journaled fields means the
// discipline has silently rotted out of the source.
package drift

type Coordinator struct { // want `Coordinator declares no // seep:journaled fields`
	placement map[string]string
	seq       uint64
}

func (c *Coordinator) broadcast(msg string) {}
