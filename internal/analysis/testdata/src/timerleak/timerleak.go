// Package timerleak exercises the timerleak analyzer: time.After in
// loops, abandoned time.After in multi-case selects, and the clean
// stopped-timer shape.
package timerleak

import "time"

func afterInLoop(stop chan struct{}) {
	for {
		select {
		case <-time.After(time.Second): // want `time\.After inside a loop`
		case <-stop:
			return
		}
	}
}

func afterInRange(items []int) {
	for range items {
		<-time.After(time.Millisecond) // want `time\.After inside a loop`
	}
}

func abandonedAfter(stop chan struct{}) {
	select {
	case <-time.After(time.Second): // want `select can abandon <-time\.After`
	case <-stop:
		return
	}
}

func soleAfter() {
	// A single-case select (or a bare receive) always consumes the
	// timer; nothing is abandoned.
	select {
	case <-time.After(time.Millisecond):
	}
	<-time.After(time.Millisecond)
}

func stoppedTimer(stop chan struct{}) {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	select {
	case <-t.C:
	case <-stop:
		return
	}
}

func loopWithTicker(stop chan struct{}) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
		case <-stop:
			return
		}
	}
}
