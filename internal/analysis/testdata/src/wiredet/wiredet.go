// Package wiredet exercises the wiredet analyzer. The test type-checks
// it under the import path seep/internal/state, one of the
// byte-deterministic packages the analyzer gates on.
package wiredet

import (
	"bytes"
	"encoding/gob"
	"sort"

	"seep/internal/stream"
)

func encodeUnsorted(enc *stream.Encoder, m map[string]int64) {
	enc.Uint64(uint64(len(m)))
	for k, v := range m { // want `map iteration feeds a stream\.Encoder method`
		enc.String32(k)
		enc.Int64(v)
	}
}

func encodeViaHelper(enc *stream.Encoder, m map[string]int64) {
	for k := range m { // want `map iteration feeds an encoding helper`
		writeKey(enc, k)
	}
}

func writeKey(enc *stream.Encoder, k string) { enc.String32(k) }

func encodeGobUnsorted(m map[string]int64) []byte {
	var buf bytes.Buffer
	g := gob.NewEncoder(&buf)
	for k := range m { // want `map iteration feeds an Encode call`
		_ = g.Encode(k)
	}
	return buf.Bytes()
}

func encodeSorted(enc *stream.Encoder, m map[string]int64) {
	keys := make([]string, 0, len(m))
	for k := range m { // collecting keys touches no encoder: clean
		keys = append(keys, k)
	}
	sort.Strings(keys)
	enc.Uint64(uint64(len(keys)))
	for _, k := range keys { // slice range, not a map range: clean
		enc.String32(k)
		enc.Int64(m[k])
	}
}

func countOnly(m map[string]int64) int {
	n := 0
	for range m { // no encoder involved: clean
		n++
	}
	return n
}
