// Package optmatrix exercises the optmatrix analyzer. The test
// type-checks it under the import path seep, the package the analyzer
// gates on.
package optmatrix

// Option mirrors the root package's functional-option type.
type Option func(*runtimeConfig)

type restrictedOption struct {
	name    string
	accepts []string
}

type runtimeConfig struct {
	seed       int64
	workers    int
	wire       string
	restricted []restrictedOption
}

func (c *runtimeConfig) restrict(name string, note string, accepts ...string) {
	c.restricted = append(c.restricted, restrictedOption{name: name, accepts: accepts})
}

var universalOptions = []string{
	"WithSeed",
	"WithBoth", // want `option WithBoth is both restricted \(c\.restrict\) and listed in universalOptions`
	"WithGone", // want `universalOptions lists "WithGone" but no exported option constructor`
}

// WithSeed is universal: listed, no restrict. Clean.
func WithSeed(seed int64) Option {
	return func(c *runtimeConfig) { c.seed = seed }
}

// WithWorkers registers itself correctly. Clean.
func WithWorkers(n int) Option {
	return func(c *runtimeConfig) {
		c.workers = n
		c.restrict("WithWorkers", "", "dist")
	}
}

// WithWire registers under a stale name.
func WithWire(name string) Option {
	return func(c *runtimeConfig) {
		c.wire = name
		c.restrict("WithWireCodec", "", "dist") // want `c\.restrict registers "WithWireCodec" from inside WithWire`
	}
}

// WithOrphan appears in neither registry.
func WithOrphan(n int) Option { // want `option WithOrphan neither calls c\.restrict\("WithOrphan", \.\.\.\) nor appears in universalOptions`
	return func(c *runtimeConfig) { c.workers = n }
}

// WithBoth is restricted and listed universal at once; the diagnostic
// lands on the universalOptions entry above, where the stale listing
// lives.
func WithBoth(n int) Option {
	return func(c *runtimeConfig) {
		c.workers = n
		c.restrict("WithBoth", "", "dist")
	}
}

// withLocal is unexported: not part of the public matrix. Clean.
func withLocal(n int) Option {
	return func(c *runtimeConfig) { c.workers = n }
}

// WithHelper returns something else entirely. Clean.
func WithHelper(n int) int { return n }
