// Package journalfirst exercises the journalfirst analyzer. The test
// type-checks it under an import path ending in internal/dist, the
// package the analyzer gates on.
package journalfirst

type record struct{ kind int }

type instance struct{ op string }

// Coordinator mirrors the shape the analyzer reads: journaled fields
// carry the seep:journaled marker.
type Coordinator struct {
	placement map[instance]string // seep:journaled
	order     []string            // seep:journaled
	seq       uint64              // seep:journaled
	scratch   int
}

func (c *Coordinator) journal(rec *record) bool { return true }

func (c *Coordinator) broadcast(msg string) {}

func (c *Coordinator) sendTo(addr, msg string) {}

func (c *Coordinator) goodDeploy(addr string) {
	c.placement[instance{op: "src"}] = addr
	c.order = append(c.order, addr)
	c.journal(&record{kind: 1})
	c.broadcast("deploy")
}

func (c *Coordinator) badDeploy(addr string) {
	c.placement[instance{op: "src"}] = addr
	c.broadcast("deploy") // want `badDeploy mutates journaled field placement but sends broadcast to workers without any c\.journal call`
}

func (c *Coordinator) sendBeforeJournal(addr string) {
	c.seq++
	c.sendTo(addr, "plan") // want `sendBeforeJournal sends sendTo to workers before its c\.journal call while mutating journaled field seq`
	c.journal(&record{kind: 2})
	c.sendTo(addr, "commit") // after the journal: fine
}

func (c *Coordinator) badRetire(inst instance, addr string) {
	delete(c.placement, inst)
	c.sendTo(addr, "retire") // want `badRetire mutates journaled field placement but sends sendTo to workers without any c\.journal call`
}

// reconcileInventory applies journal-derived placements back to the
// fleet after a failover replay; the journal is already the source.
//
// seep:replay
func (c *Coordinator) reconcileInventory(addr string) {
	delete(c.placement, instance{op: "stray"})
	c.sendTo(addr, "retire")
}

func (c *Coordinator) scratchOnly(addr string) {
	// Mutating non-journaled state needs no journal record.
	c.scratch++
	c.broadcast("report")
}
