// Package missing exercises optmatrix's registry guard: With* options
// exist but the package declares no universalOptions var at all.
package missing

type Option func(*runtimeConfig)

type runtimeConfig struct{ seed int64 }

// WithSeed would be universal, but there is no registry to list it in.
func WithSeed(seed int64) Option { // want `declares With\* options but no universalOptions registry var`
	return func(c *runtimeConfig) { c.seed = seed }
}
