// Package load turns `go list` package patterns into parsed,
// type-checked packages for the analysis driver and its tests, using
// only the standard library: package enumeration shells out to the go
// command, parsing is go/parser, and type checking is go/types with the
// stdlib source importer (which is module-aware when the working
// directory sits inside a module).
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one parsed, type-checked package.
type Package struct {
	// ImportPath is the package's import path ("seep/internal/engine").
	ImportPath string
	// Dir is the package's source directory.
	Dir string
	// Fset positions every file in the load.
	Fset *token.FileSet
	// Files are the parsed compiled Go files (no _test.go files).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's fact tables for Files.
	Info *types.Info
	// TypeErrors records type-check problems (the load keeps going so
	// one broken package does not hide findings elsewhere).
	TypeErrors []error
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
}

// Packages loads every package matching the go-list patterns (e.g.
// "./..."), excluding test files. The returned packages are sorted by
// import path.
func Packages(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&out)
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("go list %v: decode: %v", patterns, err)
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ImportPath < entries[j].ImportPath })

	fset := token.NewFileSet()
	// One shared importer caches every dependency across the run.
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, e := range entries {
		if len(e.GoFiles) == 0 {
			continue
		}
		var names []string
		for _, g := range e.GoFiles {
			names = append(names, filepath.Join(e.Dir, g))
		}
		p, err := Files(fset, imp, e.ImportPath, names)
		if err != nil {
			return nil, err
		}
		p.Dir = e.Dir
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Files parses and type-checks one package from an explicit file list.
// fset and imp may be shared across calls (nil allocates fresh ones);
// path becomes the package's import path, which analyzers use for
// package gating — tests exploit this to check fixture packages under
// production import paths.
func Files(fset *token.FileSet, imp types.Importer, path string, filenames []string) (*Package, error) {
	if fset == nil {
		fset = token.NewFileSet()
	}
	if imp == nil {
		imp = importer.ForCompiler(fset, "source", nil)
	}
	var files []*ast.File
	for _, name := range filenames {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	p := &Package{ImportPath: path, Fset: fset, Files: files, Info: info}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	pkg, err := conf.Check(path, fset, files, info)
	if pkg == nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	p.Pkg = pkg
	return p, nil
}
