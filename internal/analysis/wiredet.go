package analysis

import (
	"go/ast"
	"go/types"
)

// wiredetPackages are the byte-deterministic packages: every encoder in
// them must emit identical bytes for identical values, because delta
// parity checks, journal CRCs and cross-version compatibility tests all
// compare encodings byte-for-byte.
var wiredetPackages = map[string]bool{
	"seep/internal/state":        true,
	"seep/internal/wirecodec":    true,
	"seep/internal/controlplane": true,
}

// Wiredet flags map iteration feeding an encoder in the
// byte-deterministic packages: Go map order is randomised, so any bytes
// written from inside a `range m` body differ run to run unless the
// keys were sorted first.
var Wiredet = &Analyzer{
	Name: "wiredet",
	Doc: `flag unsorted map ranges that feed a wire encoder

In seep/internal/state, wirecodec and controlplane the wire formats are
byte-deterministic by contract (delta parity, journal CRC framing and
mixed-version compatibility all compare raw bytes). A for-range over a
map whose body touches a stream.Encoder (as receiver or argument) or
calls a gob/json Encode emits bytes in randomised map order. Collect
the keys into a slice, sort it, then iterate the slice — see
encodeDeltaBody in state/deltawire.go for the canonical shape.`,
	Run: runWiredet,
}

func runWiredet(pass *Pass) error {
	if !wiredetPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			reported := false
			ast.Inspect(rng.Body, func(m ast.Node) bool {
				if reported {
					return false
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if enc := encoderUse(pass.TypesInfo, call); enc != "" {
					reported = true
					pass.Reportf(rng.Pos(), "map iteration feeds %s without an interposed sort; map order is randomised, breaking byte-determinism — collect keys, sort, then encode", enc)
					return false
				}
				return true
			})
			return true
		})
	}
	return nil
}

// encoderUse reports how a call involves a wire encoder: a method on
// stream.Encoder, a gob/json Encoder.Encode, or an encoder passed as an
// argument to a helper. Returns "" when the call is encoder-free.
func encoderUse(info *types.Info, call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok {
			if typeIsNamed(tv.Type, "seep/internal/stream", "Encoder") {
				return "a stream.Encoder method"
			}
			if sel.Sel.Name == "Encode" &&
				(typeIsNamed(tv.Type, "encoding/gob", "Encoder") || typeIsNamed(tv.Type, "encoding/json", "Encoder")) {
				return "an Encode call"
			}
		}
	}
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && typeIsNamed(tv.Type, "seep/internal/stream", "Encoder") {
			return "an encoding helper (stream.Encoder argument)"
		}
	}
	return ""
}
