package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Optmatrix keeps the option/substrate matrix closed: every exported
// With* option in the root seep package must either register itself in
// the substrate-restriction machinery (c.restrict) or be listed in the
// universalOptions registry, so an option can never silently apply to a
// substrate that ignores it.
var Optmatrix = &Analyzer{
	Name: "optmatrix",
	Doc: `flag With* options missing from the substrate matrix

The seep package promises that deploying an option on a substrate that
does not support it is a Deploy error, never a silent no-op. That
promise is carried by two registries: c.restrict("WithX", ...) calls
inside restricted options, and the universalOptions list for options
every substrate accepts. This analyzer checks that every exported
With* constructor returning Option appears in exactly one of the two,
that each restrict literal names its enclosing function (no
copy/paste drift), and that universalOptions lists no stale names.`,
	Run: runOptmatrix,
}

func runOptmatrix(pass *Pass) error {
	if pass.Pkg.Path() != "seep" {
		return nil
	}
	type optionFn struct {
		decl         *ast.FuncDecl
		restrictName string    // literal passed to c.restrict, "" if none
		restrictPos  token.Pos // position of that literal
	}
	var options []optionFn
	universal := make(map[string]token.Pos)
	var universalDecl token.Pos

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !d.Name.IsExported() || !strings.HasPrefix(d.Name.Name, "With") || !returnsOption(d) {
					continue
				}
				o := optionFn{decl: d}
				if d.Body != nil {
					ast.Inspect(d.Body, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
						if !ok || sel.Sel.Name != "restrict" || len(call.Args) == 0 {
							return true
						}
						if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
							if s, err := strconv.Unquote(lit.Value); err == nil {
								o.restrictName = s
								o.restrictPos = lit.Pos()
							}
						} else {
							pass.Reportf(call.Args[0].Pos(), "c.restrict must be called with a string literal option name (got a computed value)")
						}
						return true
					})
				}
				options = append(options, o)
			case *ast.GenDecl:
				if d.Tok != token.VAR {
					continue
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if name.Name != "universalOptions" || i >= len(vs.Values) {
							continue
						}
						universalDecl = name.Pos()
						collectStringKeys(vs.Values[i], func(s string, pos token.Pos) {
							universal[s] = pos
						})
					}
				}
			}
		}
	}

	if len(options) == 0 {
		return nil
	}
	if universalDecl == token.NoPos {
		pass.Reportf(options[0].decl.Pos(), "package %s declares With* options but no universalOptions registry var; declare one listing every option accepted by all substrates", pass.Pkg.Name())
		return nil
	}

	byName := make(map[string]bool, len(options))
	for _, o := range options {
		name := o.decl.Name.Name
		byName[name] = true
		_, isUniversal := universal[name]
		switch {
		case o.restrictName == "" && !isUniversal:
			pass.Reportf(o.decl.Name.Pos(), "option %s neither calls c.restrict(%q, ...) nor appears in universalOptions; every option must declare its substrate matrix", name, name)
		case o.restrictName != "" && o.restrictName != name:
			pass.Reportf(o.restrictPos, "c.restrict registers %q from inside %s; the registered name must match the enclosing option", o.restrictName, name)
		case o.restrictName == name && isUniversal:
			pass.Reportf(universal[name], "option %s is both restricted (c.restrict) and listed in universalOptions; pick one", name)
		}
	}
	for name, pos := range universal {
		if !byName[name] {
			pass.Reportf(pos, "universalOptions lists %q but no exported option constructor of that name exists", name)
		}
	}
	return nil
}

// returnsOption reports whether the function's single result type is
// named Option.
func returnsOption(d *ast.FuncDecl) bool {
	if d.Type.Results == nil || len(d.Type.Results.List) != 1 {
		return false
	}
	id, ok := d.Type.Results.List[0].Type.(*ast.Ident)
	return ok && id.Name == "Option"
}

// collectStringKeys walks a composite literal collecting its string
// entries: []string elements, or the keys of a map[string]... literal.
func collectStringKeys(e ast.Expr, yield func(string, token.Pos)) {
	lit, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return
	}
	for _, elt := range lit.Elts {
		target := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			target = kv.Key
		}
		if bl, ok := ast.Unparen(target).(*ast.BasicLit); ok && bl.Kind == token.STRING {
			if s, err := strconv.Unquote(bl.Value); err == nil {
				yield(s, bl.Pos())
			}
		}
	}
}
