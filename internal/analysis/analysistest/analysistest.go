// Package analysistest checks one analyzer against fixture packages
// under testdata/src, matching its diagnostics against `// want "re"`
// expectation comments the way golang.org/x/tools/go/analysis's harness
// of the same name does:
//
//	ch <- v // want `channel send while`
//
// A line may carry several quoted (or backquoted) regexps; each must be
// matched by a distinct diagnostic on that line, and every diagnostic
// must be claimed by some expectation. Fixture packages are type-checked
// under a caller-chosen import path, so package-gated analyzers (which
// fire only inside, say, seep/internal/dist) can be exercised from
// fixtures that live elsewhere on disk.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"seep/internal/analysis"
	"seep/internal/analysis/load"
)

// Run analyzes the fixture package in dir (every non-test .go file),
// type-checked under importPath, and reports mismatches between the
// analyzer's findings and the fixtures' want comments as test errors.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	p, err := load.Files(nil, nil, importPath, files)
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	for _, terr := range p.TypeErrors {
		t.Errorf("fixture does not type-check: %v", terr)
	}

	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, p.Fset, p.Files, p.Pkg, p.Info, &diags)
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	wants := collectWants(t, p)
	claimed := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if claimed[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
				continue
			}
			if w.re.MatchString(d.Message) {
				claimed[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
	for i, d := range diags {
		if !claimed[i] {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRx matches one Go string or raw-string literal.
var wantRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, p *load.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				for _, lit := range wantRx.FindAllString(strings.TrimPrefix(text, "want "), -1) {
					s, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, s, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// Fixture returns the conventional fixture directory for a package name:
// testdata/src/<name> relative to the caller's package directory.
func Fixture(name string) string { return filepath.Join("testdata", "src", name) }
