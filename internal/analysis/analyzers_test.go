package analysis_test

import (
	"testing"

	"seep/internal/analysis"
	"seep/internal/analysis/analysistest"
)

// Each analyzer is checked against a fixture package holding both
// flagged and clean variants of its target patterns; the fixtures'
// `// want` comments are the expected diagnostics. Package-gated
// analyzers get type-checked under the production import paths they
// fire on.

func TestHeldlock(t *testing.T) {
	analysistest.Run(t, analysis.Heldlock, analysistest.Fixture("heldlock"), "fixtures/heldlock")
}

func TestTimerleak(t *testing.T) {
	analysistest.Run(t, analysis.Timerleak, analysistest.Fixture("timerleak"), "fixtures/timerleak")
}

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, analysis.Atomicmix, analysistest.Fixture("atomicmix"), "fixtures/atomicmix")
}

func TestWiredet(t *testing.T) {
	analysistest.Run(t, analysis.Wiredet, analysistest.Fixture("wiredet"), "seep/internal/state")
}

func TestJournalfirst(t *testing.T) {
	analysistest.Run(t, analysis.Journalfirst, analysistest.Fixture("journalfirst"), "fixtures/internal/dist")
}

func TestJournalfirstDriftGuard(t *testing.T) {
	analysistest.Run(t, analysis.Journalfirst, analysistest.Fixture("journalfirst_drift"), "fixtures/internal/dist")
}

func TestOptmatrix(t *testing.T) {
	analysistest.Run(t, analysis.Optmatrix, analysistest.Fixture("optmatrix"), "seep")
}

func TestOptmatrixMissingRegistry(t *testing.T) {
	analysistest.Run(t, analysis.Optmatrix, analysistest.Fixture("optmatrix_missing"), "seep")
}

// TestLookup pins the suite roster: the CLI, CI and docs all assume
// these six names exist.
func TestLookup(t *testing.T) {
	for _, name := range []string{"heldlock", "journalfirst", "timerleak", "wiredet", "atomicmix", "optmatrix"} {
		if analysis.Lookup(name) == nil {
			t.Errorf("Lookup(%q) = nil; the suite lost an analyzer", name)
		}
	}
	if analysis.Lookup("nosuch") != nil {
		t.Errorf("Lookup(nosuch) should be nil")
	}
	if got := len(analysis.All()); got != 6 {
		t.Errorf("All() returned %d analyzers, want 6", got)
	}
}
