package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves a call expression to the *types.Func it invokes
// (nil for calls through function values, built-ins and conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgCall reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".After).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeFunc(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}

// typeIsNamed reports whether t (possibly behind pointers) is the named
// type pkgPath.name.
func typeIsNamed(t types.Type, pkgPath, name string) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// canonPath renders a simple path expression (ident, or a chain of
// field selections rooted at an ident) as a stable key tied to the root
// variable's identity: "var@<pos>.f1.f2". It returns "" for anything
// more complex (calls, indexing, dereferences of expressions), which
// callers treat as "cannot verify".
func canonPath(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	var fields []string
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			fields = append(fields, x.Sel.Name)
			e = ast.Unparen(x.X)
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if obj == nil {
				return ""
			}
			// Reverse the collected fields (outermost selector first).
			for i, j := 0, len(fields)-1; i < j; i, j = i+1, j-1 {
				fields[i], fields[j] = fields[j], fields[i]
			}
			key := fmt.Sprintf("%s@%d", obj.Name(), obj.Pos())
			if len(fields) > 0 {
				key += "." + strings.Join(fields, ".")
			}
			return key
		default:
			return ""
		}
	}
}

// fieldVar resolves a selector expression to the struct field it
// selects (nil when it is not a field selection).
func fieldVar(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	// Qualified references (pkg.Var) and some field accesses resolve
	// through Uses instead.
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// funcScopes yields every function body in the file as an independent
// lexical scope: each FuncDecl paired with its declaration, and each
// FuncLit paired with the FuncDecl it appears in (decl may be nil for
// literals in var initialisers). Nested literals are yielded separately
// and their bodies are NOT re-visited as part of the enclosing scope's
// walk when the visitor uses scopeWalk.
type funcScope struct {
	decl *ast.FuncDecl // the annotated declaration, nil for orphan literals
	lit  *ast.FuncLit  // nil for the declaration's own body
	body *ast.BlockStmt
}

func funcScopes(file *ast.File) []funcScope {
	var scopes []funcScope
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if ok && fn.Body != nil {
			scopes = append(scopes, funcScope{decl: fn, body: fn.Body})
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					scopes = append(scopes, funcScope{decl: fn, lit: lit, body: lit.Body})
				}
				return true
			})
			continue
		}
		// Function literals in package-level var initialisers.
		ast.Inspect(decl, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				scopes = append(scopes, funcScope{lit: lit, body: lit.Body})
			}
			return true
		})
	}
	return scopes
}

// scopeWalk visits the nodes of one function scope in lexical order,
// skipping nested function literals (they are separate scopes: their
// bodies execute later, typically on another goroutine, so lock state
// and journal ordering do not carry into them).
func scopeWalk(s funcScope, visit func(n ast.Node) bool) {
	ast.Inspect(s.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != s.lit {
			return false
		}
		return visit(n)
	})
}
