package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Journalfirst enforces the PR 7 control-plane discipline in
// seep/internal/dist: a Coordinator method that mutates journaled
// (replay-authoritative) state must append its journal record before
// anything escapes to a worker, so a coordinator that dies mid-method
// always replays a state that is a superset of what workers saw.
var Journalfirst = &Analyzer{
	Name: "journalfirst",
	Doc: `flag worker-visible sends that precede the journal append

Coordinator struct fields marked // seep:journaled are authoritative
control-plane state, reconstructed from the write-ahead journal on
failover. In any Coordinator method (or function literal) that mutates
one of those fields, every worker-visible send — c.broadcast, c.sendTo,
peer.SendControl, peer.SendAck — must come lexically after a
c.journal(...) call in the same scope: the record has to be durable
before workers can observe the new state, or a replayed coordinator
knows less than its fleet ("the deployment snapshot goes to the WAL
before any worker sees the plan"). Functions marked // seep:replay are
exempt: they apply journal-derived state during recovery, where the
journal itself is the source.`,
	Run: runJournalfirst,
}

// journalfirstSends are the worker-visible escape calls.
var journalfirstSends = map[string]bool{
	"broadcast":   true,
	"sendTo":      true,
	"SendControl": true,
	"SendAck":     true,
}

func runJournalfirst(pass *Pass) error {
	if !strings.HasSuffix(pass.Pkg.Path(), "internal/dist") {
		return nil
	}
	journaled, coordPos := journaledFields(pass)
	if len(journaled) == 0 {
		if coordPos != token.NoPos {
			// The struct exists but nothing is marked: the discipline
			// has drifted out of the source. Flag once, on the struct.
			pass.Reportf(coordPos, "Coordinator declares no // seep:journaled fields; mark the journal-replayed authoritative state so journalfirst can check the PR 7 discipline")
		}
		return nil
	}

	for _, file := range pass.Files {
		for _, scope := range funcScopes(file) {
			if scope.decl == nil || !isCoordinatorMethod(pass.TypesInfo, scope.decl) {
				continue
			}
			if hasDirective(FuncDirectives(scope.decl), "replay") {
				continue
			}
			checkJournalOrder(pass, scope, journaled)
		}
	}
	return nil
}

type jfEvent struct {
	pos  token.Pos
	kind int // 0 mutation, 1 journal, 2 send
	what string
}

func checkJournalOrder(pass *Pass, scope funcScope, journaled map[*types.Var]bool) {
	var events []jfEvent
	scopeWalk(scope, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if v, sel := journaledTarget(pass.TypesInfo, lhs, journaled); v != nil {
					events = append(events, jfEvent{pos: sel.Pos(), kind: 0, what: v.Name()})
				}
			}
		case *ast.IncDecStmt:
			if v, sel := journaledTarget(pass.TypesInfo, s.X, journaled); v != nil {
				events = append(events, jfEvent{pos: sel.Pos(), kind: 0, what: v.Name()})
			}
		case *ast.CallExpr:
			// delete(c.placement, k) mutates; c.journal(...) anchors;
			// send calls escape.
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && id.Name == "delete" && len(s.Args) > 0 {
				if v, sel := journaledTarget(pass.TypesInfo, s.Args[0], journaled); v != nil {
					events = append(events, jfEvent{pos: sel.Pos(), kind: 0, what: v.Name()})
				}
				return true
			}
			sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch {
			case sel.Sel.Name == "journal" && recvIsCoordinator(pass.TypesInfo, sel):
				events = append(events, jfEvent{pos: s.Pos(), kind: 1})
			case journalfirstSends[sel.Sel.Name]:
				events = append(events, jfEvent{pos: s.Pos(), kind: 2, what: sel.Sel.Name})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	mutated := ""
	for _, ev := range events {
		if ev.kind == 0 {
			mutated = ev.what
			break
		}
	}
	if mutated == "" {
		return
	}
	journalAt := token.NoPos
	for _, ev := range events {
		if ev.kind == 1 {
			journalAt = ev.pos
			break
		}
	}
	for _, ev := range events {
		if ev.kind != 2 || (journalAt != token.NoPos && ev.pos > journalAt) {
			continue
		}
		name := scope.decl.Name.Name
		if journalAt == token.NoPos {
			pass.Reportf(ev.pos, "%s mutates journaled field %s but sends %s to workers without any c.journal call; journal the record first (or mark the method // seep:replay if it applies journal-derived state)", name, mutated, ev.what)
		} else {
			pass.Reportf(ev.pos, "%s sends %s to workers before its c.journal call while mutating journaled field %s; the record must be durable before workers observe the new state", name, ev.what, mutated)
		}
	}
}

// journaledTarget resolves an expression (selector, or an index/slice
// over a selector) to a journaled Coordinator field.
func journaledTarget(info *types.Info, e ast.Expr, journaled map[*types.Var]bool) (*types.Var, ast.Expr) {
	e = ast.Unparen(e)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	v := fieldVar(info, sel)
	if v == nil || !journaled[v] {
		return nil, nil
	}
	return v, sel
}

// journaledFields collects the seep:journaled fields of the Coordinator
// struct. The position result locates the Coordinator struct (NoPos
// when the package has none).
func journaledFields(pass *Pass) (map[*types.Var]bool, token.Pos) {
	out := make(map[*types.Var]bool)
	found := token.NoPos
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Coordinator" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				found = ts.Pos()
				for _, field := range st.Fields.List {
					marked := hasDirective(ParseDirectives(field.Doc), "journaled") ||
						hasDirective(ParseDirectives(field.Comment), "journaled")
					if !marked {
						continue
					}
					for _, name := range field.Names {
						if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
							out[v] = true
						}
					}
				}
			}
		}
	}
	return out, found
}

func hasDirective(ds []Directive, verb string) bool {
	for _, d := range ds {
		if d.Verb == verb {
			return true
		}
	}
	return false
}

// isCoordinatorMethod reports whether fn is declared on *Coordinator.
func isCoordinatorMethod(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	tv, ok := info.Types[fn.Recv.List[0].Type]
	if !ok {
		return false
	}
	return namedIs(tv.Type, "Coordinator")
}

// recvIsCoordinator reports whether a method selector's receiver is a
// Coordinator value.
func recvIsCoordinator(info *types.Info, sel *ast.SelectorExpr) bool {
	tv, ok := info.Types[sel.X]
	return ok && namedIs(tv.Type, "Coordinator")
}

func namedIs(t types.Type, name string) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() != nil && n.Obj().Name() == name
}
