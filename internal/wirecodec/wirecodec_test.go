package wirecodec

import (
	"encoding/gob"
	"errors"
	"strings"
	"testing"

	"seep/internal/state"
	"seep/internal/stream"
)

func init() {
	// The tag-0 fallback path goes through gob, which needs the concrete
	// type registered — exactly what callers relying on the old
	// RegisterPayloadType behaviour already have.
	gob.Register(testUnregistered{})
}

type testPoint struct {
	X, Y int64
}

type testTagged struct {
	Name string
}

type testUnregistered struct {
	V string
}

func encPoint(e *stream.Encoder, v any) error {
	p := v.(testPoint)
	e.Varint(p.X)
	e.Varint(p.Y)
	return nil
}

func decPoint(d *stream.Decoder) (any, error) {
	p := testPoint{X: d.Varint(), Y: d.Varint()}
	return p, d.Err()
}

func TestBuiltinRoundTrip(t *testing.T) {
	fallback := state.GobPayloadCodec{}
	cases := []any{
		"hello",
		"",
		nil,
		[]byte{0x1, 0x2, 0x3},
		int64(-42),
		int(7),
		float64(3.5),
		true,
		false,
	}
	for _, want := range cases {
		e := stream.NewEncoder(32)
		if err := EncodePayload(e, want, fallback); err != nil {
			t.Fatalf("encode %#v: %v", want, err)
		}
		d := stream.NewDecoder(e.Bytes())
		got, err := DecodePayload(d, fallback)
		if err != nil {
			t.Fatalf("decode %#v: %v", want, err)
		}
		switch w := want.(type) {
		case []byte:
			g, ok := got.([]byte)
			if !ok || string(g) != string(w) {
				t.Fatalf("roundtrip %#v: got %#v", want, got)
			}
		default:
			if got != want {
				t.Fatalf("roundtrip %#v: got %#v", want, got)
			}
		}
	}
}

func TestRegisterCodecRoundTrip(t *testing.T) {
	tag, err := RegisterCodec(testPoint{}, encPoint, decPoint)
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if tag < FirstUserTag {
		t.Fatalf("assigned tag %d below FirstUserTag", tag)
	}
	fallback := state.GobPayloadCodec{}
	e := stream.NewEncoder(32)
	want := testPoint{X: -5, Y: 1 << 40}
	if err := EncodePayload(e, want, fallback); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if e.Bytes()[0] != tag {
		t.Fatalf("wire tag byte = %d, want %d", e.Bytes()[0], tag)
	}
	got, err := DecodePayload(stream.NewDecoder(e.Bytes()), fallback)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != want {
		t.Fatalf("roundtrip: got %#v want %#v", got, want)
	}
}

func TestRegisterDuplicate(t *testing.T) {
	tag1, err := Register(testTagged{})
	if err != nil {
		t.Fatalf("first register: %v", err)
	}
	tag2, err := Register(testTagged{})
	if err == nil {
		t.Fatal("duplicate register: want error, got nil")
	}
	if tag2 != tag1 {
		t.Fatalf("duplicate register returned tag %d, want original %d", tag2, tag1)
	}
}

func TestRegisterNil(t *testing.T) {
	if _, err := Register(nil); err == nil {
		t.Fatal("register nil: want error")
	}
	if _, err := RegisterCodec(testPoint{}, nil, nil); err == nil {
		t.Fatal("register nil codec: want error")
	}
}

func TestUnregisteredFallsBack(t *testing.T) {
	fallback := state.GobPayloadCodec{}
	e := stream.NewEncoder(64)
	want := testUnregistered{V: "via-gob"}
	if err := EncodePayload(e, want, fallback); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if e.Bytes()[0] != TagFallback {
		t.Fatalf("wire tag byte = %d, want fallback 0", e.Bytes()[0])
	}
	got, err := DecodePayload(stream.NewDecoder(e.Bytes()), fallback)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.(testUnregistered) != want {
		t.Fatalf("roundtrip: got %#v want %#v", got, want)
	}
}

func TestFailedCodecRollsBack(t *testing.T) {
	type flaky struct{ S string }
	_, err := RegisterCodec(flaky{},
		func(e *stream.Encoder, v any) error {
			e.Uint64(0xdead) // partial write that must be rolled back
			return errors.New("boom")
		},
		func(d *stream.Decoder) (any, error) { return nil, errors.New("unused") })
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	fallback := state.GobPayloadCodec{}
	e := stream.NewEncoder(64)
	e.Uint8(0x77) // pre-existing content must survive the rollback
	want := flaky{S: "recovered"}
	if err := EncodePayload(e, want, fallback); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if e.Bytes()[0] != 0x77 || e.Bytes()[1] != TagFallback {
		t.Fatalf("rollback failed: prefix bytes % x", e.Bytes()[:2])
	}
	d := stream.NewDecoder(e.Bytes())
	d.Uint8()
	got, err := DecodePayload(d, fallback)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.(flaky) != want {
		t.Fatalf("roundtrip: got %#v want %#v", got, want)
	}
}

func TestDecodeUnknownTag(t *testing.T) {
	e := stream.NewEncoder(4)
	e.Uint8(255)
	_, err := DecodePayload(stream.NewDecoder(e.Bytes()), state.GobPayloadCodec{})
	if err == nil || !strings.Contains(err.Error(), "unknown payload wire tag") {
		t.Fatalf("want unknown-tag error, got %v", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	fallback := state.GobPayloadCodec{}
	e := stream.NewEncoder(32)
	if err := EncodePayload(e, "a longer string payload", fallback); err != nil {
		t.Fatal(err)
	}
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := stream.NewDecoder(full[:cut])
		v, err := DecodePayload(d, fallback)
		if err == nil && d.Err() == nil && v != "a longer string payload" {
			t.Fatalf("truncated at %d: silently decoded %#v", cut, v)
		}
	}
}

func TestEncodeAnyRejectsUnregistered(t *testing.T) {
	e := stream.NewEncoder(16)
	if err := EncodeAny(e, testUnregistered{V: "x"}); err == nil {
		t.Fatal("EncodeAny of unregistered type: want error")
	}
	if err := EncodeAny(e, "nested-ok"); err != nil {
		t.Fatalf("EncodeAny builtin: %v", err)
	}
	got, err := DecodeAny(stream.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatalf("DecodeAny: %v", err)
	}
	if got != "nested-ok" {
		t.Fatalf("DecodeAny: got %#v", got)
	}
}

func TestEncodeStringAllocFree(t *testing.T) {
	e := stream.NewEncoder(1 << 10)
	// Box once: tuples hold payloads as `any` already, so the hot path
	// never pays the string-to-interface conversion per encode.
	var s any = "steady-state string payload"
	allocs := testing.AllocsPerRun(100, func() {
		e.Reset()
		if err := EncodePayload(e, s, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("string encode allocates %.1f/op, want 0", allocs)
	}
}
