// Package wirecodec implements the compact binary payload encoding used
// by the v2 batch frames: every tuple payload is a one-byte wire tag
// followed by a tag-specific body. Common Go scalars have fixed builtin
// tags; registered concrete types (seep.RegisterPayloadType, the
// operator library's output types) get tags from a process-global
// registry with hand-written or gob-backed codecs; anything else falls
// back to tag 0 — the connection's configured PayloadCodec (gob by
// default) — so an unregistered type costs compactness, never
// correctness.
//
// The registry is process-global for the same reason gob.Register is:
// both ends of a connection live in different processes, so the tag
// assignment must be a deterministic function of registration order
// compiled into every binary.
package wirecodec

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"

	"seep/internal/state"
	"seep/internal/stream"
)

// Builtin wire tags. Tag 0 is the fallback: a uvarint length-prefixed
// blob produced by the connection's configured PayloadCodec.
const (
	TagFallback = uint8(0)
	TagNil      = uint8(1)
	TagString   = uint8(2)
	TagBytes    = uint8(3)
	TagInt64    = uint8(4)
	TagInt      = uint8(5)
	TagFloat64  = uint8(6)
	TagBool     = uint8(7)
	// FirstUserTag is the first tag handed to registered types; the
	// remaining space (8..255) allows 248 registrations per process.
	FirstUserTag = uint8(8)
)

// EncodeFunc serialises one payload of the registered concrete type.
type EncodeFunc func(e *stream.Encoder, v any) error

// DecodeFunc reads back what the matching EncodeFunc wrote.
type DecodeFunc func(d *stream.Decoder) (any, error)

type entry struct {
	tag uint8
	enc EncodeFunc
	dec DecodeFunc
}

// table is an immutable registry snapshot: readers load it with one
// atomic pointer read, registration copies and republishes it.
type table struct {
	byType map[reflect.Type]entry
	byTag  [256]*entry
	next   uint16 // next unassigned tag; >255 means exhausted
}

var (
	regMu  sync.Mutex
	tables atomic.Pointer[table]
)

func init() {
	tables.Store(&table{byType: map[reflect.Type]entry{}, next: uint16(FirstUserTag)})
}

// Register assigns a wire tag to the concrete type of v, encoded as a
// gob blob on the wire, and registers the type with encoding/gob for
// the fallback path. It returns the assigned tag. Registering the same
// type again returns the original tag and an error; gob name conflicts
// surface as errors instead of panics.
func Register(v any) (uint8, error) {
	if v == nil {
		return 0, fmt.Errorf("wirecodec: cannot register nil")
	}
	return RegisterCodec(v, gobEncode, gobDecode)
}

// RegisterCodec assigns a wire tag to the concrete type of v with a
// hand-written codec — the fast, byte-deterministic path the operator
// library uses for its output types. The type is also registered with
// encoding/gob so pre-binary peers and the tag-0 fallback can still
// carry it. Returns the assigned tag; duplicate registration returns
// the original tag and an error.
func RegisterCodec(v any, enc EncodeFunc, dec DecodeFunc) (uint8, error) {
	if v == nil {
		return 0, fmt.Errorf("wirecodec: cannot register nil")
	}
	if enc == nil || dec == nil {
		return 0, fmt.Errorf("wirecodec: nil codec for %T", v)
	}
	rt := reflect.TypeOf(v)
	regMu.Lock()
	defer regMu.Unlock()
	old := tables.Load()
	if ent, ok := old.byType[rt]; ok {
		return ent.tag, fmt.Errorf("wirecodec: %s already registered as wire tag %d", rt, ent.tag)
	}
	if old.next > 255 {
		return 0, fmt.Errorf("wirecodec: wire-tag space exhausted (%d user types)", 256-int(FirstUserTag))
	}
	if err := gobRegister(v); err != nil {
		return 0, err
	}
	nt := &table{byType: make(map[reflect.Type]entry, len(old.byType)+1), byTag: old.byTag, next: old.next + 1}
	for k, e := range old.byType {
		nt.byType[k] = e
	}
	ent := entry{tag: uint8(old.next), enc: enc, dec: dec}
	nt.byType[rt] = ent
	ec := ent
	nt.byTag[ent.tag] = &ec
	tables.Store(nt)
	return ent.tag, nil
}

// gobRegister wraps gob.Register, converting its conflicting-name panic
// into an error.
func gobRegister(v any) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("wirecodec: gob registration of %T: %v", v, r)
		}
	}()
	gob.Register(v)
	return nil
}

func gobEncode(e *stream.Encoder, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return fmt.Errorf("wirecodec: gob payload %T: %w", v, err)
	}
	e.BytesV(buf.Bytes())
	return nil
}

func gobDecode(d *stream.Decoder) (any, error) {
	b := d.BytesV()
	if err := d.Err(); err != nil {
		return nil, err
	}
	var v any
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
		return nil, fmt.Errorf("wirecodec: gob payload: %w", err)
	}
	return v, nil
}

// EncodePayload appends the tag and body for v. Builtin scalars take the
// type-switch fast path (a string payload is appended directly, no
// []byte conversion — the encode side of a hop is allocation-free);
// registered types use their codec; everything else is a tag-0 blob
// through the connection's fallback codec. A registered codec that fails
// mid-payload is rolled back and retried through the fallback, so a
// frame is never left with a half-written record.
func EncodePayload(e *stream.Encoder, v any, fallback state.PayloadCodec) error {
	switch p := v.(type) {
	case string:
		e.Uint8(TagString)
		e.StringV(p)
		return nil
	case nil:
		e.Uint8(TagNil)
		return nil
	case []byte:
		e.Uint8(TagBytes)
		e.BytesV(p)
		return nil
	case int64:
		e.Uint8(TagInt64)
		e.Varint(p)
		return nil
	case int:
		e.Uint8(TagInt)
		e.Varint(int64(p))
		return nil
	case float64:
		e.Uint8(TagFloat64)
		e.Float64(p)
		return nil
	case bool:
		e.Uint8(TagBool)
		e.Bool(p)
		return nil
	}
	if ent, ok := tables.Load().byType[reflect.TypeOf(v)]; ok {
		mark := e.Len()
		e.Uint8(ent.tag)
		if err := ent.enc(e, v); err == nil {
			return nil
		}
		e.Truncate(mark)
	}
	e.Uint8(TagFallback)
	pb, err := fallback.EncodePayload(v)
	if err != nil {
		return err
	}
	e.BytesV(pb)
	return nil
}

// DecodePayload reads one tag-prefixed payload written by EncodePayload.
func DecodePayload(d *stream.Decoder, fallback state.PayloadCodec) (any, error) {
	switch tag := d.Uint8(); tag {
	case TagString:
		return d.StringV(), d.Err()
	case TagNil:
		return nil, d.Err()
	case TagBytes:
		b := d.BytesV()
		if err := d.Err(); err != nil {
			return nil, err
		}
		cp := make([]byte, len(b))
		copy(cp, b)
		return cp, nil
	case TagInt64:
		return d.Varint(), d.Err()
	case TagInt:
		return int(d.Varint()), d.Err()
	case TagFloat64:
		return d.Float64(), d.Err()
	case TagBool:
		return d.Bool(), d.Err()
	case TagFallback:
		pb := d.BytesV()
		if err := d.Err(); err != nil {
			return nil, err
		}
		return fallback.DecodePayload(pb)
	default:
		if ent := tables.Load().byTag[tag]; ent != nil {
			return ent.dec(d)
		}
		return nil, fmt.Errorf("wirecodec: unknown payload wire tag %d", tag)
	}
}

// EncodeAny encodes a nested payload (a registered type's field of
// interface type) with builtin and registered tags only — there is no
// fallback codec in a nested context, so an unregistered inner type is
// an error, which the top-level EncodePayload turns into a whole-record
// fallback.
func EncodeAny(e *stream.Encoder, v any) error {
	switch v.(type) {
	case string, nil, []byte, int64, int, float64, bool:
		return EncodePayload(e, v, nil)
	}
	if ent, ok := tables.Load().byType[reflect.TypeOf(v)]; ok {
		e.Uint8(ent.tag)
		return ent.enc(e, v)
	}
	return fmt.Errorf("wirecodec: unregistered nested payload type %T", v)
}

// DecodeAny reads a nested payload written by EncodeAny.
func DecodeAny(d *stream.Decoder) (any, error) {
	return DecodePayload(d, rejectFallback{})
}

// rejectFallback guards DecodeAny: EncodeAny never writes tag 0, so a
// nested fallback blob means a corrupt or foreign frame.
type rejectFallback struct{}

func (rejectFallback) EncodePayload(any) ([]byte, error) {
	return nil, fmt.Errorf("wirecodec: nested payload cannot use the fallback codec")
}

func (rejectFallback) DecodePayload([]byte) (any, error) {
	return nil, fmt.Errorf("wirecodec: nested payload cannot use the fallback codec")
}
