package flow

import (
	"testing"

	"seep/internal/control"
	"seep/internal/plan"
	"seep/internal/sim"
)

// chain builds src → work → sink with the given per-tuple cost.
func chain(cost float64, stateful bool) ([]OpConfig, []Edge) {
	role := plan.RoleStateless
	if stateful {
		role = plan.RoleStateful
	}
	ops := []OpConfig{
		{ID: "src", Role: plan.RoleSource},
		{ID: "work", Role: role, CostPerTuple: cost, Stateful: stateful},
		{ID: "snk", Role: plan.RoleSink},
	}
	edges := []Edge{
		{From: "src", To: "work"},
		{From: "work", To: "snk"},
	}
	return ops, edges
}

func TestFlowSteadyStateKeepsUp(t *testing.T) {
	ops, edges := chain(0.0005, false) // capacity 2000 tuples/s
	r, err := NewRunner(Config{
		Seed: 1, Ops: ops, Edges: edges,
		Rate:           func(int64) float64 { return 1000 },
		DurationMillis: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	if last := res.Throughput.Last(); last.V < 990 || last.V > 1010 {
		t.Errorf("throughput = %v, want ≈1000", last.V)
	}
	if res.Latency.Percentile(0.95) > 50 {
		t.Errorf("P95 latency = %d ms at 50%% load", res.Latency.Percentile(0.95))
	}
	if res.FinalVMs != 3 {
		t.Errorf("FinalVMs = %d, want 3 (no policy)", res.FinalVMs)
	}
}

func TestFlowOverloadWithoutPolicyBacksUp(t *testing.T) {
	ops, edges := chain(0.001, false) // capacity 1000 tuples/s
	r, err := NewRunner(Config{
		Seed: 1, Ops: ops, Edges: edges,
		Rate:           func(int64) float64 { return 2000 },
		DurationMillis: 30_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	// Closed loop without scale out: backlog and latency grow without
	// bound; throughput is pinned at capacity.
	if last := res.Throughput.Last(); last.V > 1100 {
		t.Errorf("throughput = %v beyond capacity", last.V)
	}
	if res.Latency.Percentile(0.95) < 1000 {
		t.Errorf("P95 = %d ms; overload should cause seconds of queueing", res.Latency.Percentile(0.95))
	}
}

func TestFlowPolicyScalesOutToMatchLoad(t *testing.T) {
	ops, edges := chain(0.001, true) // 1000 tuples/s per instance
	r, err := NewRunner(Config{
		Seed: 1, Ops: ops, Edges: edges,
		Rate:           func(int64) float64 { return 3500 },
		DurationMillis: 300_000,
		Policy:         control.DefaultPolicy(),
		Pool:           sim.PoolConfig{Size: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	// 3500 tuples/s at 1000/instance and δ=0.7 → at least 4 instances,
	// likely 5-6 (scale out doubles partitions).
	n := r.Instances("work")
	if n < 4 {
		t.Errorf("instances = %d, want ≥ 4", n)
	}
	if res.ScaleOuts == 0 {
		t.Error("no scale-outs recorded")
	}
	if last := res.Throughput.Last(); last.V < 3400 {
		t.Errorf("final throughput = %v, want ≈3500", last.V)
	}
	// After stabilising, latency recovers to small values.
	pts := res.LatencyTS.Points()
	tail := pts[len(pts)-10:]
	for _, p := range tail {
		if p.V > 500 {
			t.Errorf("late latency = %v ms at t=%d; system did not stabilise", p.V, p.T)
		}
	}
}

func TestFlowOpenLoopDropsThenStabilises(t *testing.T) {
	ops, edges := chain(0.001, false)
	r, err := NewRunner(Config{
		Seed: 1, Ops: ops, Edges: edges,
		Rate:           func(int64) float64 { return 4000 },
		DurationMillis: 240_000,
		Policy:         control.DefaultPolicy(),
		Pool:           sim.PoolConfig{Size: 3},
		OpenLoop:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	if res.Dropped == 0 {
		t.Error("under-provisioned open loop should drop tuples")
	}
	if last := res.Throughput.Last(); last.V < 3800 {
		t.Errorf("final consumed rate = %v, want ≈4000", last.V)
	}
}

func TestFlowLowerThresholdMoreVMs(t *testing.T) {
	run := func(delta float64) int {
		ops, edges := chain(0.001, true)
		r, err := NewRunner(Config{
			Seed: 1, Ops: ops, Edges: edges,
			Rate:           func(int64) float64 { return 2500 },
			DurationMillis: 300_000,
			Policy:         control.Policy{Threshold: delta, ConsecutiveReports: 2, ReportEveryMillis: 5000},
			Pool:           sim.PoolConfig{Size: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		r.Run()
		return r.Instances("work")
	}
	low, high := run(0.30), run(0.90)
	if low <= high {
		t.Errorf("δ=0.3 → %d instances, δ=0.9 → %d; lower threshold should allocate more", low, high)
	}
}

func TestFlowManualAllocation(t *testing.T) {
	ops, edges := chain(0.001, false)
	r, err := NewRunner(Config{
		Seed: 1, Ops: ops, Edges: edges,
		Rate:           func(int64) float64 { return 3000 },
		DurationMillis: 60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SetAllocation("work", 4); err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	if r.Instances("work") != 4 {
		t.Errorf("Instances = %d", r.Instances("work"))
	}
	if res.Latency.Percentile(0.95) > 100 {
		t.Errorf("P95 = %d ms with adequate manual allocation", res.Latency.Percentile(0.95))
	}
	if err := r.SetAllocation("nosuch", 2); err == nil {
		t.Error("unknown operator accepted")
	}
	if err := r.SetAllocation("work", 0); err == nil {
		t.Error("zero allocation accepted")
	}
}

func TestFlowSourceCap(t *testing.T) {
	ops, edges := chain(0.00001, false)
	r, err := NewRunner(Config{
		Seed: 1, Ops: ops, Edges: edges,
		Rate:           func(int64) float64 { return 1_000_000 },
		SourceCap:      600_000,
		DurationMillis: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	if res.InputRate.MaxV() > 600_000 {
		t.Errorf("input exceeded source cap: %v", res.InputRate.MaxV())
	}
}

func TestFlowValidation(t *testing.T) {
	ops, edges := chain(0.001, false)
	if _, err := NewRunner(Config{Ops: append(ops, ops[0]), Edges: edges, Rate: func(int64) float64 { return 1 }, DurationMillis: 1000}); err == nil {
		t.Error("duplicate op accepted")
	}
	if _, err := NewRunner(Config{Ops: ops, Edges: []Edge{{From: "src", To: "ghost"}}, Rate: func(int64) float64 { return 1 }, DurationMillis: 1000}); err == nil {
		t.Error("edge to unknown accepted")
	}
	cyc := []Edge{{From: "src", To: "work"}, {From: "work", To: "work"}}
	if _, err := NewRunner(Config{Ops: ops, Edges: cyc, Rate: func(int64) float64 { return 1 }, DurationMillis: 1000}); err == nil {
		t.Error("cycle accepted")
	}
}

func TestFlowDeterministic(t *testing.T) {
	run := func() (int, float64) {
		ops, edges := chain(0.001, true)
		r, err := NewRunner(Config{
			Seed: 9, Ops: ops, Edges: edges,
			Rate:           func(int64) float64 { return 2500 },
			DurationMillis: 120_000,
			Policy:         control.DefaultPolicy(),
			Pool:           sim.PoolConfig{Size: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		res := r.Run()
		return res.FinalVMs, res.Throughput.Last().V
	}
	v1, t1 := run()
	v2, t2 := run()
	if v1 != v2 || t1 != t2 {
		t.Errorf("non-deterministic: (%d,%v) vs (%d,%v)", v1, t1, v2, t2)
	}
}
