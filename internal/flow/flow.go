// Package flow is a flow-level (fluid) simulator for large-scale scale-out
// experiments. Where the tuple-level simulator (internal/sim) executes
// every tuple through real operator code, the flow simulator tracks
// *rates* through the execution graph: each operator instance has a
// per-tuple CPU cost and a backlog, and queueing, utilisation, scale-out
// and VM-pool dynamics evolve in fixed ticks of virtual time.
//
// This is the substitution (documented in DESIGN.md) for the paper's
// 50-VM Amazon EC2 runs of the Linear Road Benchmark at up to 600,000
// tuples/s (≈1.2 G tuples over a 2000 s run), which are infeasible to
// simulate tuple-by-tuple. The control plane driving the experiments —
// control.Detector with the §5.1 policy, the VM pool of §5.2 — is the
// same code used by the tuple-level simulator.
package flow

import (
	"fmt"
	"math"
	"sort"

	"seep/internal/control"
	"seep/internal/metrics"
	"seep/internal/plan"
	"seep/internal/sim"
)

// OpConfig describes one logical operator in the flow graph.
type OpConfig struct {
	// ID names the operator.
	ID plan.OpID
	// Role is plan.RoleSource, RoleSink, RoleStateless or RoleStateful.
	Role string
	// CostPerTuple is the CPU cost units consumed per input tuple.
	CostPerTuple float64
	// Selectivity is output tuples per input tuple (default 1).
	Selectivity float64
	// Initial is the number of instances at deployment (default 1).
	Initial int
	// Max caps scale out (0 = unbounded).
	Max int
	// StateBytesPerTupleRate approximates operator state growth; only
	// used to scale the restore delay of stateful operators.
	Stateful bool
}

// Edge connects two operators; Fraction is the share of the upstream
// output stream routed to this downstream (1.0 for a broadcast-free
// linear chain; the LRB forwarder splits by tuple type).
type Edge struct {
	From, To plan.OpID
	Fraction float64
}

// Config parameterises a flow-level experiment.
type Config struct {
	Seed int64
	// Ops and Edges define the query.
	Ops   []OpConfig
	Edges []Edge
	// Rate is the aggregate source input rate profile (tuples/s).
	Rate func(tMillis int64) float64
	// SourceCap caps the rate a single deployment can inject/collect
	// (the paper's sources and sinks saturate at 600 k tuples/s due to
	// serialisation). 0 = uncapped.
	SourceCap float64
	// TickMillis is the integration step (default 250 ms).
	TickMillis int64
	// DurationMillis is the experiment length.
	DurationMillis int64
	// VMCapacity is cost units/s per VM (default 1).
	VMCapacity float64
	// Policy is the scaling policy; zero value disables dynamic scale
	// out (manual/static allocation).
	Policy control.Policy
	// Pool configures the VM pool.
	Pool sim.PoolConfig
	// CheckpointIntervalMillis sets the replay window penalty applied to
	// the new instances at a scale-out switch (default 5000).
	CheckpointIntervalMillis int64
	// OpenLoop, when true, bounds per-instance backlogs and drops excess
	// tuples (the map/reduce experiment); closed loop lets backlogs grow.
	OpenLoop bool
	// QueueBoundSeconds bounds the backlog (in seconds of service) in
	// open-loop mode (default 2 s).
	QueueBoundSeconds float64
	// RestoreDelayStatefulMillis delays a stateful instance's activation
	// at scale out (state partitioning + restore; default 1500).
	RestoreDelayStatefulMillis int64
	// QueueQuantumMillis is the scheduling/batching granularity that
	// converts utilisation into per-tuple waiting time: tuples on a VM
	// running at utilisation ρ wait ≈ ρ/(1-ρ) quanta (buffer flushes,
	// scheduler slices). Default 25 ms.
	QueueQuantumMillis float64
	// DisruptMillis is how long a scale-out switch disrupts the affected
	// operator's stream: upstream operators are stopped while routing
	// and buffers are repartitioned, and buffered tuples replay
	// (Algorithm 3 lines 9-14). Frequent scale outs (low δ) therefore
	// raise the higher latency percentiles — the left half of Fig. 9.
	// Default 2000 ms.
	DisruptMillis int64
	// ReportNoise is the standard deviation of measurement noise on CPU
	// utilisation reports (shared-host "stolen time", sampling jitter,
	// §5.1). With a very low threshold δ this noise keeps re-triggering
	// scale outs — the churn the paper observes at δ=10%. Default 0.03.
	ReportNoise float64
}

func (c Config) withDefaults() Config {
	if c.TickMillis == 0 {
		c.TickMillis = 250
	}
	if c.VMCapacity == 0 {
		c.VMCapacity = 1.0
	}
	if c.CheckpointIntervalMillis == 0 {
		c.CheckpointIntervalMillis = 5_000
	}
	if c.QueueBoundSeconds == 0 {
		c.QueueBoundSeconds = 2.0
	}
	if c.RestoreDelayStatefulMillis == 0 {
		c.RestoreDelayStatefulMillis = 1_500
	}
	if c.QueueQuantumMillis == 0 {
		c.QueueQuantumMillis = 25
	}
	if c.DisruptMillis == 0 {
		c.DisruptMillis = 1_500
	}
	if c.ReportNoise == 0 {
		c.ReportNoise = 0.03
	}
	if c.Pool.Size == 0 {
		c.Pool.Size = 3
	}
	return c
}

// instance is one running partition of an operator.
type instance struct {
	id      plan.InstanceID
	backlog float64 // queued tuples
	// replayPenalty is extra backlog added at activation (checkpoint
	// replay), separated for observability.
	util float64
	// activatedAt allows a grace period before reporting utilisation.
	activatedAt int64
}

type opState struct {
	cfg       OpConfig
	instances []*instance
	nextPart  int
	inRate    float64
	outRate   float64
	// scaling marks an in-flight scale out (victim → pending VM).
	scaling map[plan.InstanceID]bool
	// disruptUntil marks the end of the current scale-out switch window
	// during which this operator's stream is paused/replaying.
	disruptUntil int64
}

// Result carries the experiment outputs in the shape the paper plots.
type Result struct {
	// InputRate, Throughput (tuples/s at sink), and VMs over time.
	InputRate  *metrics.TimeSeries
	Throughput *metrics.TimeSeries
	VMs        *metrics.TimeSeries
	// LatencyTS is the per-tick end-to-end latency estimate (ms).
	LatencyTS *metrics.TimeSeries
	// Latency aggregates per-tick latency samples for percentiles.
	Latency *metrics.Histogram
	// OpProcessed records, per operator, the processed tuple rate over
	// time ("tuples consumed/second" in the open-loop experiment).
	OpProcessed map[plan.OpID]*metrics.TimeSeries
	// Dropped counts open-loop tuple drops.
	Dropped float64
	// FinalVMs is the allocation at the end of the run.
	FinalVMs int
	// ScaleOuts counts completed scale-out operations.
	ScaleOuts int
}

// Runner executes a flow-level experiment.
type Runner struct {
	cfg      Config
	s        *sim.Sim
	pool     *sim.Pool
	ops      map[plan.OpID]*opState
	order    []plan.OpID
	incoming map[plan.OpID][]Edge
	detector *control.Detector
	res      *Result
	// reported accumulates per-instance utilisation between policy
	// reports (averaged over the report window).
	utilAccum map[plan.InstanceID]float64
	utilTicks int
}

// NewRunner validates the graph and prepares a runner.
func NewRunner(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	r := &Runner{
		cfg:       cfg,
		s:         sim.New(cfg.Seed),
		ops:       make(map[plan.OpID]*opState),
		incoming:  make(map[plan.OpID][]Edge),
		utilAccum: make(map[plan.InstanceID]float64),
		res: &Result{
			InputRate:   &metrics.TimeSeries{},
			Throughput:  &metrics.TimeSeries{},
			VMs:         &metrics.TimeSeries{},
			LatencyTS:   &metrics.TimeSeries{},
			Latency:     &metrics.Histogram{},
			OpProcessed: make(map[plan.OpID]*metrics.TimeSeries),
		},
	}
	r.pool = sim.NewPool(r.s, cfg.Pool)
	for _, oc := range cfg.Ops {
		if oc.Selectivity == 0 {
			oc.Selectivity = 1
		}
		if oc.Initial <= 0 {
			oc.Initial = 1
		}
		if _, dup := r.ops[oc.ID]; dup {
			return nil, fmt.Errorf("flow: duplicate operator %q", oc.ID)
		}
		st := &opState{cfg: oc, scaling: make(map[plan.InstanceID]bool)}
		for i := 0; i < oc.Initial; i++ {
			st.nextPart++
			st.instances = append(st.instances, &instance{
				id: plan.InstanceID{Op: oc.ID, Part: st.nextPart},
			})
		}
		r.ops[oc.ID] = st
		r.order = append(r.order, oc.ID)
	}
	for _, e := range cfg.Edges {
		if _, ok := r.ops[e.From]; !ok {
			return nil, fmt.Errorf("flow: edge from unknown %q", e.From)
		}
		if _, ok := r.ops[e.To]; !ok {
			return nil, fmt.Errorf("flow: edge to unknown %q", e.To)
		}
		if e.Fraction == 0 {
			e.Fraction = 1
		}
		r.incoming[e.To] = append(r.incoming[e.To], e)
	}
	// Topological order via repeated scan (graphs are tiny).
	r.order = r.topoOrder()
	if r.order == nil {
		return nil, fmt.Errorf("flow: graph has a cycle")
	}
	return r, nil
}

func (r *Runner) topoOrder() []plan.OpID {
	indeg := make(map[plan.OpID]int)
	for id := range r.ops {
		indeg[id] = len(r.incoming[id])
	}
	var frontier []plan.OpID
	for _, oc := range r.cfg.Ops {
		if indeg[oc.ID] == 0 {
			frontier = append(frontier, oc.ID)
		}
	}
	var out []plan.OpID
	for len(frontier) > 0 {
		id := frontier[0]
		frontier = frontier[1:]
		out = append(out, id)
		for _, oc := range r.cfg.Ops {
			for _, e := range r.incoming[oc.ID] {
				if e.From == id {
					indeg[oc.ID]--
					if indeg[oc.ID] == 0 {
						frontier = append(frontier, oc.ID)
					}
				}
			}
		}
	}
	if len(out) != len(r.ops) {
		return nil
	}
	return out
}

// Run executes the experiment and returns its result.
func (r *Runner) Run() *Result {
	cfg := r.cfg
	if cfg.Policy.ReportEveryMillis > 0 {
		r.detector = control.NewDetector(cfg.Policy)
		r.s.Every(cfg.Policy.ReportEveryMillis, func() bool {
			r.policyRound()
			return true
		})
	}
	r.s.Every(cfg.TickMillis, func() bool {
		r.tick()
		return r.s.Now() < cfg.DurationMillis
	})
	r.s.RunUntil(cfg.DurationMillis)
	r.res.FinalVMs = r.totalVMs()
	return r.res
}

func (r *Runner) totalVMs() int {
	n := 0
	for _, st := range r.ops {
		n += len(st.instances)
	}
	return n
}

// tick integrates one step of the fluid model.
func (r *Runner) tick() {
	now := r.s.Now()
	dt := float64(r.cfg.TickMillis) / 1000.0
	latency := 0.0 // end-to-end ms along the pipeline

	for _, id := range r.order {
		st := r.ops[id]
		switch st.cfg.Role {
		case plan.RoleSource:
			rate := r.cfg.Rate(now)
			if r.cfg.SourceCap > 0 && rate > r.cfg.SourceCap {
				rate = r.cfg.SourceCap
			}
			st.inRate = rate
			st.outRate = rate * st.cfg.Selectivity
			r.res.InputRate.Add(now, rate)
			continue
		default:
		}
		in := 0.0
		for _, e := range r.incoming[id] {
			in += r.ops[e.From].outRate * e.Fraction
		}
		st.inRate = in
		if st.cfg.Role == plan.RoleSink {
			st.outRate = in
			r.res.Throughput.Add(now, in)
			continue
		}
		n := len(st.instances)
		if n == 0 {
			st.outRate = 0
			continue
		}
		share := in / float64(n)
		serviceRate := r.cfg.VMCapacity / st.cfg.CostPerTuple // tuples/s per instance
		processedTotal := 0.0
		worstWait := 0.0
		for _, ins := range st.instances {
			arrivals := share * dt
			capTuples := serviceRate * dt
			avail := ins.backlog + arrivals
			processed := math.Min(avail, capTuples)
			ins.backlog = avail - processed
			if r.cfg.OpenLoop {
				bound := r.cfg.QueueBoundSeconds * serviceRate
				if ins.backlog > bound {
					r.res.Dropped += ins.backlog - bound
					ins.backlog = bound
				}
			}
			processedTotal += processed
			// Utilisation: offered load over capacity; queued backlog
			// forces ≥ 1 to mirror the VM model's accounting.
			u := (share * st.cfg.CostPerTuple) / r.cfg.VMCapacity
			if ins.backlog > serviceRate*0.01 { // >10 ms of queue
				if u < 1 {
					u = 1 + ins.backlog/(serviceRate*10)
				}
			}
			ins.util = u
			r.utilAccum[ins.id] += u
			// Queue wait for a tuple arriving now: transient backlog plus
			// the steady-state queueing delay ρ/(1-ρ) scheduling quanta,
			// so running instances hot (high δ) costs latency even
			// without a persistent backlog — the right half of Fig. 9.
			wait := ins.backlog / serviceRate * 1000 // ms
			if rho := math.Min(u, 0.95); rho < 1 {
				wait += r.cfg.QueueQuantumMillis * rho / (1 - rho)
			}
			if wait > worstWait {
				worstWait = wait
			}
		}
		st.outRate = processedTotal / dt * st.cfg.Selectivity
		ts := r.res.OpProcessed[id]
		if ts == nil {
			ts = &metrics.TimeSeries{}
			r.res.OpProcessed[id] = ts
		}
		ts.Add(now, processedTotal/dt)
		// Tuples flowing through a mid-switch operator wait out the
		// remaining stop/replay window.
		if st.disruptUntil > now {
			worstWait += float64(st.disruptUntil - now)
		}
		// Latency along the pipeline: service time plus the worst
		// per-instance queueing delay at this hop.
		svc := st.cfg.CostPerTuple / r.cfg.VMCapacity * 1000
		latency += svc + worstWait
	}
	r.utilTicks++
	// Sub-millisecond floor: network hops.
	latency += 2 * float64(len(r.order))
	r.res.LatencyTS.Add(now, latency)
	r.res.Latency.Observe(int64(latency))
	r.res.VMs.Add(now, float64(r.totalVMs()))
}

// policyRound reports windowed average utilisation and executes scale-out
// decisions.
func (r *Runner) policyRound() {
	if r.utilTicks == 0 {
		return
	}
	var reports []control.Report
	var ids []plan.InstanceID
	for id := range r.utilAccum {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Op != ids[j].Op {
			return ids[i].Op < ids[j].Op
		}
		return ids[i].Part < ids[j].Part
	})
	for _, id := range ids {
		st := r.ops[id.Op]
		if st == nil || st.cfg.Role == plan.RoleSource || st.cfg.Role == plan.RoleSink {
			continue
		}
		// Grace period: a freshly activated instance is still digesting
		// its replay backlog; reporting it immediately would re-trigger
		// scale out before the split has had any effect.
		if grace := r.graceOf(id); grace {
			continue
		}
		util := r.utilAccum[id] / float64(r.utilTicks)
		if r.cfg.ReportNoise > 0 {
			util += r.s.Rand().NormFloat64() * r.cfg.ReportNoise
		}
		reports = append(reports, control.Report{Inst: id, Util: util})
	}
	r.utilAccum = make(map[plan.InstanceID]float64)
	r.utilTicks = 0
	for _, victim := range r.detector.Observe(reports) {
		r.scaleOut(victim)
	}
}

// graceOf reports whether an instance is within its post-activation
// grace period (two policy report windows).
func (r *Runner) graceOf(id plan.InstanceID) bool {
	st := r.ops[id.Op]
	if st == nil {
		return false
	}
	for _, ins := range st.instances {
		if ins.id == id {
			return ins.activatedAt > 0 && r.s.Now()-ins.activatedAt < 2*r.cfg.Policy.ReportEveryMillis
		}
	}
	return false
}

// scaleOut splits one instance in two: a VM is acquired from the pool;
// at the switch, the victim's backlog is divided between the two
// replacements and each replays the checkpoint window (§4.3), which
// appears as a transient backlog and thus a latency spike — the behaviour
// visible in the paper's Fig. 7.
func (r *Runner) scaleOut(victim plan.InstanceID) {
	st := r.ops[victim.Op]
	if st == nil || st.scaling[victim] {
		return
	}
	if st.cfg.Max > 0 && len(st.instances) >= st.cfg.Max {
		return
	}
	st.scaling[victim] = true
	r.pool.Acquire(func(vm *sim.VM) {
		activate := func() {
			delete(st.scaling, victim)
			r.detector.Forget(victim)
			// The victim may have been replaced already (e.g. shrunk);
			// find it.
			idx := -1
			for i, ins := range st.instances {
				if ins.id == victim {
					idx = i
					break
				}
			}
			if idx < 0 {
				return
			}
			old := st.instances[idx]
			// Replay penalty: tuples processed since the last checkpoint
			// must be re-processed by the replacements.
			share := st.inRate / float64(len(st.instances))
			replay := share * float64(r.cfg.CheckpointIntervalMillis) / 1000.0
			half := (old.backlog + replay) / 2
			st.nextPart++
			a := &instance{id: plan.InstanceID{Op: victim.Op, Part: st.nextPart}, backlog: half, activatedAt: r.s.Now()}
			st.nextPart++
			b := &instance{id: plan.InstanceID{Op: victim.Op, Part: st.nextPart}, backlog: half, activatedAt: r.s.Now()}
			st.instances = append(st.instances[:idx], st.instances[idx+1:]...)
			st.instances = append(st.instances, a, b)
			// Disruption windows stack — each concurrent split stops the
			// upstream operators and replays buffers in turn — but cap at
			// three windows: splits of different instances repartition
			// disjoint key ranges and proceed mostly in parallel.
			if st.disruptUntil > r.s.Now() {
				st.disruptUntil += r.cfg.DisruptMillis
			} else {
				st.disruptUntil = r.s.Now() + r.cfg.DisruptMillis
			}
			if lim := r.s.Now() + 3*r.cfg.DisruptMillis; st.disruptUntil > lim {
				st.disruptUntil = lim
			}
			r.res.ScaleOuts++
		}
		if st.cfg.Stateful {
			// State partitioning and restore delay the switch.
			r.s.After(r.cfg.RestoreDelayStatefulMillis, activate)
		} else {
			activate()
		}
	})
}

// SetAllocation statically assigns n instances to an operator (the manual
// scale-out comparison of Fig. 10). Must be called before Run.
func (r *Runner) SetAllocation(op plan.OpID, n int) error {
	st := r.ops[op]
	if st == nil {
		return fmt.Errorf("flow: unknown operator %q", op)
	}
	if n < 1 {
		return fmt.Errorf("flow: allocation %d for %q", n, op)
	}
	st.instances = nil
	st.nextPart = 0
	for i := 0; i < n; i++ {
		st.nextPart++
		st.instances = append(st.instances, &instance{id: plan.InstanceID{Op: op, Part: st.nextPart}})
	}
	return nil
}

// Instances returns the current instance count for an operator.
func (r *Runner) Instances(op plan.OpID) int {
	if st := r.ops[op]; st != nil {
		return len(st.instances)
	}
	return 0
}
