package engine

import (
	"testing"
	"time"

	"seep/internal/control"
	"seep/internal/plan"
)

// TestEngineMergeInstancesExactCounts: split the counter in two, stream
// through both halves, merge them back mid-stream, stream again — every
// tuple must be reflected exactly once in the merged state and the
// parallelism must return to one.
func TestEngineMergeInstancesExactCounts(t *testing.T) {
	e := wordEngine(t, Config{CheckpointInterval: 50 * time.Millisecond})
	e.Start()
	defer e.Stop()

	if err := e.InjectBatch(inst("src", 1), 1000, wordGen(25)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("engine did not quiesce before scale out")
	}
	victim := e.Manager().Instances("count")[0]
	if err := e.ScaleOut(victim, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.InjectBatch(inst("src", 1), 1000, wordGen(25)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("engine did not quiesce before merge")
	}

	siblings := e.Manager().Instances("count")
	if len(siblings) != 2 {
		t.Fatalf("Instances(count) = %v, want 2", siblings)
	}
	if err := e.MergeInstances(siblings); err != nil {
		t.Fatal(err)
	}
	if got := e.Manager().Parallelism("count"); got != 1 {
		t.Fatalf("Parallelism(count) after merge = %d, want 1", got)
	}
	if e.Merges() != 1 {
		t.Errorf("Merges() = %d, want 1", e.Merges())
	}

	if err := e.InjectBatch(inst("src", 1), 1000, wordGen(25)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("engine did not quiesce after merge")
	}
	got := counts(e)
	for w, c := range got {
		if c != 120 { // 3000 tuples / 25 words
			t.Errorf("count[%s] = %d, want 120 (exactly once across split+merge)", w, c)
		}
	}
	if len(got) != 25 {
		t.Errorf("distinct words = %d, want 25", len(got))
	}
	recs := e.Recoveries()
	var merges int
	for _, r := range recs {
		if r.Merge {
			merges++
			if r.Pi != 1 || r.Failure {
				t.Errorf("merge record = %+v", r)
			}
		}
	}
	if merges != 1 {
		t.Errorf("merge records = %d, want 1", merges)
	}
}

// TestEngineMergeUnderTraffic merges the two counter partitions while
// the source is still injecting, so tuples are in flight through every
// stage of the transition. The retained-buffer replay and the
// per-victim duplicate-detection identities must still deliver exact
// per-key counts.
func TestEngineMergeUnderTraffic(t *testing.T) {
	e := wordEngine(t, Config{CheckpointInterval: 20 * time.Millisecond})
	e.Start()
	defer e.Stop()

	if err := e.InjectBatch(inst("src", 1), 500, wordGen(25)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("engine did not quiesce before scale out")
	}
	if err := e.ScaleOut(e.Manager().Instances("count")[0], 2); err != nil {
		t.Fatal(err)
	}

	// Inject concurrently with the merge.
	done := make(chan error, 1)
	go func() {
		done <- e.InjectBatch(inst("src", 1), 2000, wordGen(25))
	}()
	time.Sleep(10 * time.Millisecond) // let the stream get going
	siblings := e.Manager().Instances("count")
	if len(siblings) != 2 {
		t.Fatalf("Instances(count) = %v", siblings)
	}
	if err := e.MergeInstances(siblings); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 10*time.Second) {
		t.Fatal("engine did not quiesce after merge")
	}
	got := counts(e)
	for w, c := range got {
		if c != 100 { // 2500 tuples / 25 words
			t.Errorf("count[%s] = %d, want 100 (exactly once across a merge under traffic)", w, c)
		}
	}
	if len(got) != 25 {
		t.Errorf("distinct words = %d, want 25", len(got))
	}
}

// TestEngineMergeThenFailRecoversExactState: kill the merge product
// right after the merge and let recovery rebuild it — the post-merge
// checkpoint (or the plan-time merged artifact) must restore exact
// state, including the victims' legacy buffers.
func TestEngineMergeThenFailRecoversExactState(t *testing.T) {
	e := wordEngine(t, Config{CheckpointInterval: 50 * time.Millisecond})
	e.Start()
	defer e.Stop()

	if err := e.InjectBatch(inst("src", 1), 1000, wordGen(20)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce before scale out")
	}
	if err := e.ScaleOut(e.Manager().Instances("count")[0], 2); err != nil {
		t.Fatal(err)
	}
	if err := e.InjectBatch(inst("src", 1), 1000, wordGen(20)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce before merge")
	}
	if err := e.MergeInstances(e.Manager().Instances("count")); err != nil {
		t.Fatal(err)
	}
	merged := e.Manager().Instances("count")[0]
	if err := e.Fail(merged); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(merged, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.InjectBatch(inst("src", 1), 1000, wordGen(20)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 10*time.Second) {
		t.Fatal("no quiesce after recovery")
	}
	got := counts(e)
	for w, c := range got {
		if c != 150 { // 3000 tuples / 20 words
			t.Errorf("count[%s] = %d, want 150 (exactly once across merge + failure)", w, c)
		}
	}
}

// TestEngineMergeGuards: bad victim sets are rejected without touching
// the topology.
func TestEngineMergeGuards(t *testing.T) {
	e := wordEngine(t, Config{CheckpointInterval: 50 * time.Millisecond})
	e.Start()
	defer e.Stop()

	if err := e.MergeInstances([]plan.InstanceID{inst("count", 1)}); err == nil {
		t.Error("single-victim merge accepted")
	}
	if err := e.MergeInstances([]plan.InstanceID{inst("count", 1), inst("split", 1)}); err == nil {
		t.Error("cross-operator merge accepted")
	}
	if err := e.MergeInstances([]plan.InstanceID{inst("count", 1), inst("count", 9)}); err == nil {
		t.Error("merge with a dead sibling accepted")
	}
	if err := e.MergeInstances([]plan.InstanceID{inst("src", 1), inst("src", 2)}); err == nil {
		t.Error("source merge accepted")
	}
	if got := e.Manager().Parallelism("count"); got != 1 {
		t.Errorf("Parallelism(count) = %d after rejected merges, want 1", got)
	}
}

// TestEnginePolicyDrivenScaleIn: with a shrinker enabled, partitions
// that idle below the low watermark for the configured rounds merge
// automatically, and the merged operator does not immediately re-split
// (the hysteresis band).
func TestEnginePolicyDrivenScaleIn(t *testing.T) {
	e := wordEngine(t, Config{CheckpointInterval: 30 * time.Millisecond})
	e.EnablePolicy(control.Policy{Threshold: 0.7, ConsecutiveReports: 1000, ReportEveryMillis: 20}, nil)
	e.EnableScaleIn(control.ScaleInPolicy{LowWatermark: 0.25, ConsecutiveReports: 2})
	e.Start()
	defer e.Stop()

	if err := e.InjectBatch(inst("src", 1), 500, wordGen(10)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce")
	}
	if err := e.ScaleOut(e.Manager().Instances("count")[0], 2); err != nil {
		t.Fatal(err)
	}
	// Idle stream: the shrinker must merge the two partitions back.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if e.Manager().Parallelism("count") == 1 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := e.Manager().Parallelism("count"); got != 1 {
		t.Fatalf("Parallelism(count) = %d, want policy-driven merge to 1", got)
	}
	if err := e.InjectBatch(inst("src", 1), 500, wordGen(10)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce after merge")
	}
	got := counts(e)
	for w, c := range got {
		if c != 100 {
			t.Errorf("count[%s] = %d, want 100", w, c)
		}
	}
}
