package engine

import (
	"sync"
	"testing"
	"time"

	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/wordcount"
)

// slowWordEngine builds a word-count engine whose counter has a real
// per-tuple cost, so bounded queues fill and senders hit the credit
// ledger.
func slowWordEngine(t *testing.T, cfg Config, delay time.Duration) *Engine {
	t.Helper()
	q := wordcount.Query(wordcount.Options{WindowMillis: 0})
	factories := map[plan.OpID]operator.Factory{
		"split": func() operator.Operator { return operator.WordSplitter() },
		"count": func() operator.Operator {
			return &slowCounter{WordCounter: operator.NewWordCounter(0), delay: delay}
		},
	}
	e, err := New(cfg, q, factories)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// slowTotal sums counter state across partitions (counts() in
// engine_test.go asserts the concrete WordCounter type, which the
// slowCounter wrapper hides).
func slowTotal(e *Engine) int64 {
	var total int64
	for _, in := range e.Manager().Instances("count") {
		if op, ok := e.OperatorOf(in).(interface{ Counts() map[string]int64 }); ok {
			for _, c := range op.Counts() {
				total += c
			}
		}
	}
	return total
}

// A bounded queue holds senders at the credit budget: the queue never
// grows past the credit slots, stalls are counted, and no tuple is
// lost while senders wait.
func TestEngineCreditLedgerBoundsQueues(t *testing.T) {
	const queueBound, batchSize = 128, 32 // 4 credit slots per edge
	e := slowWordEngine(t, Config{
		CheckpointInterval: time.Hour,
		QueueBound:         queueBound,
		BatchSize:          batchSize,
	}, 200*time.Microsecond)
	e.Start()
	defer e.Stop()

	if err := e.InjectBatch(inst("src", 1), 3000, wordGen(40)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 20*time.Second) {
		t.Fatal("engine did not quiesce under a bounded queue")
	}
	bp := e.BackpressureSnapshot()
	if bp.CreditStalls == 0 {
		t.Error("no credit stalls recorded; the edge was never starved")
	}
	slots := queueBound / batchSize
	if bp.PeakQueueDepth > slots {
		t.Errorf("peak queue depth %d batches exceeds the %d-slot credit budget", bp.PeakQueueDepth, slots)
	}
	if got := slowTotal(e); got != 3000 {
		t.Errorf("state total = %d, want 3000 (backpressure must not shed tuples)", got)
	}
}

// Deadlock freedom: checkpoint barriers, a scale-out, recovery replay
// and a spill ceiling all race against credit-starved edges; the
// engine must keep draining and quiesce (run with -race).
func TestEngineBackpressureDeadlockFreedom(t *testing.T) {
	e := slowWordEngine(t, Config{
		CheckpointInterval: 20 * time.Millisecond, // barriers race the stalled edges
		QueueBound:         128,
		BatchSize:          32,
		MemoryLimit:        32 << 10, // spill composes with backpressure
	}, 100*time.Microsecond)
	e.Start()
	defer e.Stop()

	const injectors, batches, per = 3, 8, 250
	var wg sync.WaitGroup
	for g := 0; g < injectors; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				_ = e.InjectBatch(inst("src", 1), per, wordGen(60))
			}
		}()
	}
	// Manual checkpoints race the interval-driven barriers while the
	// edges are starved; errors (dead instance mid-recovery) are fine,
	// the test is that nothing wedges.
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.Checkpoint(inst("count", 1))
			time.Sleep(5 * time.Millisecond)
		}
	}()

	time.Sleep(50 * time.Millisecond)
	if err := e.ScaleOut(inst("count", 1), 2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	// Fail and recover a partition while its edges are credit-starved:
	// replay holds priority credits, so recovery must complete. The
	// scale-out renumbered the partitions, so pick a live one.
	victim := e.Manager().Instances("count")[0]
	if err := e.Fail(victim); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(victim, 1); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if !e.Quiesce(150*time.Millisecond, 30*time.Second) {
		t.Fatal("deadlock: engine did not quiesce with barriers + scale-out + recovery racing credit-starved edges")
	}
	bp := e.BackpressureSnapshot()
	if bp.CreditStalls == 0 {
		t.Error("no credit stalls recorded; the race never starved an edge")
	}
	// Exactly-once must survive the chaos: replay covers what the
	// stopped receivers missed, per-sender watermarks drop the
	// redundant re-deliveries, and emitMu keeps concurrent injectors
	// FIFO per edge so the watermarks never discard live tuples.
	const injected = injectors * batches * per
	if total := slowTotal(e); total != injected {
		t.Errorf("total = %d, want exactly %d", total, injected)
	}
}
