// Package engine is the live runtime: operator instances run as
// goroutines connected by channels, with the same state-management
// protocol as the simulated cluster — periodic checkpoints backed up to
// upstream hosts (Algorithm 1), per-upstream-instance duplicate
// detection, output-buffer retention and trimming, and the integrated
// fault-tolerant scale-out of Algorithm 3 for both bottleneck splitting
// and failure recovery.
//
// The engine trades the simulator's virtual time for wall-clock time; it
// is the runtime behind the runnable examples and can host any query
// built from plan.Query + operator factories.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"seep/internal/core"
	"seep/internal/metrics"
	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

// Config parameterises the engine.
type Config struct {
	// CheckpointInterval is c, the checkpointing interval (0 disables
	// checkpointing and buffering).
	CheckpointInterval time.Duration
	// TimerInterval drives TimeDriven operators (default 250 ms).
	TimerInterval time.Duration
	// ChannelBuffer is the per-node input channel capacity (default
	// 4096).
	ChannelBuffer int
	// Delta enables incremental checkpoints for managed-state operators
	// (§3.2): between full checkpoints only the dirtied keys are shipped
	// and folded into the backup. Zero value disables.
	Delta state.DeltaPolicy
}

func (c Config) withDefaults() Config {
	if c.TimerInterval == 0 {
		c.TimerInterval = 250 * time.Millisecond
	}
	if c.ChannelBuffer == 0 {
		c.ChannelBuffer = 4096
	}
	return c
}

// delivery is one tuple in flight.
type delivery struct {
	from  plan.InstanceID
	input int
	t     stream.Tuple
}

// node hosts one operator instance as a goroutine.
type node struct {
	e    *Engine
	inst plan.InstanceID
	spec *plan.OpSpec
	op   operator.Operator

	in chan delivery
	// replayQueue is consumed before the channel on (re)start, so
	// replayed tuples precede newly routed ones.
	replayQueue []delivery

	// store is the system-owned managed state of op (nil for stateless
	// and legacy Stateful operators).
	store *state.Store

	// mu guards acks/outBuf/clock/tsVec, which are touched by the node
	// goroutine and, during checkpoints/trims/recovery, by others. It
	// also guards the incremental-checkpoint bookkeeping (ckptSeq,
	// deltasSince, needFull), shared between the periodic checkpoint
	// loop and forced checkpoints.
	mu       sync.Mutex
	acks     map[plan.InstanceID]int64
	tsVec    stream.TSVector
	outClock stream.Clock
	outBuf   *state.Buffer
	ckptSeq  uint64
	// deltasSince counts deltas shipped since the last full checkpoint.
	deltasSince int
	// needFull forces the next checkpoint to be full: set initially, on
	// restore, and whenever a delta fails to apply at the backup host.
	needFull bool

	stopped   chan struct{} // closed to stop the goroutine
	done      chan struct{} // closed when the goroutine exits
	failed    atomic.Bool
	processed metrics.Counter
}

// Engine runs one query.
type Engine struct {
	cfg       Config
	mgr       *core.Manager
	factories map[plan.OpID]operator.Factory

	// mu guards nodes, routings, records and failedAt; emitters take it
	// read-only on the hot path.
	mu       sync.RWMutex
	nodes    map[plan.InstanceID]*node
	routings map[plan.OpID]*state.Routing
	records  []ReplaceRecord
	failedAt map[plan.InstanceID]int64

	start   time.Time
	started bool // guarded by mu; set once by Start
	stopAll chan struct{}
	wg      sync.WaitGroup

	sources []*sourceDriver

	// Latency records sink-observed end-to-end latency in ms.
	Latency *metrics.Histogram
	// SinkCount counts tuples arriving at sinks.
	SinkCount metrics.Counter
	// DupDropped counts tuples discarded by per-upstream duplicate
	// detection (replays already reflected in the ack watermark).
	DupDropped metrics.Counter
	// OnSink observes every sink tuple (called from node goroutines).
	OnSink func(t stream.Tuple)
}

// New builds an engine for a validated query.
func New(cfg Config, q *plan.Query, factories map[plan.OpID]operator.Factory) (*Engine, error) {
	cfg = cfg.withDefaults()
	mgr, err := core.NewManager(q)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:       cfg,
		mgr:       mgr,
		factories: factories,
		nodes:     make(map[plan.InstanceID]*node),
		routings:  make(map[plan.OpID]*state.Routing),
		failedAt:  make(map[plan.InstanceID]int64),
		stopAll:   make(chan struct{}),
		Latency:   &metrics.Histogram{},
	}
	for _, opID := range q.Ops() {
		e.routings[opID] = mgr.Routing(opID)
		spec := q.Op(opID)
		for _, inst := range mgr.Instances(opID) {
			n, err := e.newNode(inst, spec)
			if err != nil {
				return nil, err
			}
			e.nodes[inst] = n
		}
	}
	return e, nil
}

func (e *Engine) newNode(inst plan.InstanceID, spec *plan.OpSpec) (*node, error) {
	var op operator.Operator
	if spec.Role != plan.RoleSource && spec.Role != plan.RoleSink {
		f, ok := e.factories[inst.Op]
		if !ok {
			return nil, fmt.Errorf("engine: no factory for operator %q", inst.Op)
		}
		op = f()
	}
	return &node{
		e:        e,
		inst:     inst,
		spec:     spec,
		op:       op,
		store:    operator.StoreOf(op),
		in:       make(chan delivery, e.cfg.ChannelBuffer),
		acks:     make(map[plan.InstanceID]int64),
		tsVec:    stream.NewTSVector(len(e.mgr.Query().Upstream(inst.Op))),
		outBuf:   state.NewBuffer(),
		needFull: true,
		stopped:  make(chan struct{}),
		done:     make(chan struct{}),
	}, nil
}

// Manager exposes the query manager.
func (e *Engine) Manager() *core.Manager { return e.mgr }

// NowMillis returns milliseconds since Start.
func (e *Engine) NowMillis() int64 {
	if e.start.IsZero() {
		return 0
	}
	return time.Since(e.start).Milliseconds()
}

// Start launches all node goroutines, timers and checkpointing.
func (e *Engine) Start() {
	e.start = time.Now()
	e.mu.Lock()
	e.started = true
	for _, n := range e.nodes {
		e.startNode(n)
	}
	// Snapshot under the lock: a source added concurrently from here on
	// observes started == true and starts itself exactly once.
	sources := make([]*sourceDriver, len(e.sources))
	copy(sources, e.sources)
	e.mu.Unlock()

	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		tick := time.NewTicker(e.cfg.TimerInterval)
		defer tick.Stop()
		for {
			select {
			case <-e.stopAll:
				return
			case <-tick.C:
				e.fireTimers()
			}
		}
	}()
	if e.cfg.CheckpointInterval > 0 {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			tick := time.NewTicker(e.cfg.CheckpointInterval)
			defer tick.Stop()
			for {
				select {
				case <-e.stopAll:
					return
				case <-tick.C:
					e.checkpointAll()
				}
			}
		}()
	}
	for _, s := range sources {
		e.startSource(s)
	}
}

// Stop terminates all goroutines and waits for them.
func (e *Engine) Stop() {
	close(e.stopAll)
	e.mu.Lock()
	var ns []*node
	for _, n := range e.nodes {
		ns = append(ns, n)
	}
	e.mu.Unlock()
	for _, n := range ns {
		n.stop()
	}
	e.wg.Wait()
}

// startNode launches the node goroutine. Caller holds e.mu or is in
// single-threaded setup.
func (e *Engine) startNode(n *node) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer close(n.done)
		for _, d := range n.replayQueue {
			n.handle(d)
		}
		n.replayQueue = nil
		for {
			select {
			case <-n.stopped:
				// Drain to keep senders unblocked until channel empties.
				for {
					select {
					case <-n.in:
					default:
						return
					}
				}
			case d := <-n.in:
				n.handle(d)
			}
		}
	}()
}

func (n *node) stop() {
	select {
	case <-n.stopped:
	default:
		close(n.stopped)
	}
}

// handle processes one delivery on the node goroutine.
func (n *node) handle(d delivery) {
	if n.failed.Load() {
		return
	}
	n.mu.Lock()
	if d.t.TS <= n.acks[d.from] {
		n.mu.Unlock()
		n.e.DupDropped.Inc()
		return
	}
	n.acks[d.from] = d.t.TS
	n.tsVec.Advance(d.input, d.t.TS)
	n.mu.Unlock()
	n.processed.Inc()

	if n.spec.Role == plan.RoleSink {
		lat := n.e.NowMillis() - d.t.Born
		if lat < 0 {
			lat = 0
		}
		n.e.Latency.Observe(lat)
		n.e.SinkCount.Inc()
		if n.e.OnSink != nil {
			n.e.OnSink(d.t)
		}
		return
	}
	if n.op == nil {
		return
	}
	born := d.t.Born
	n.op.OnTuple(operator.Context{Now: n.e.NowMillis(), Input: d.input}, d.t, func(k stream.Key, p any) {
		n.emit(k, p, born)
	})
}

// emit stamps, buffers and routes one output tuple.
func (n *node) emit(key stream.Key, payload any, born int64) {
	if born == 0 {
		born = n.e.NowMillis()
	}
	n.mu.Lock()
	out := stream.Tuple{TS: n.outClock.Next(), Key: key, Born: born, Payload: payload}
	n.mu.Unlock()
	n.e.route(n, out)
}

// route delivers a tuple to every downstream logical operator.
func (e *Engine) route(n *node, out stream.Tuple) {
	e.mu.RLock()
	type hop struct {
		target *node
		input  int
	}
	var hops []hop
	for _, downOp := range e.mgr.Query().Downstream(n.inst.Op) {
		r := e.routings[downOp]
		if r == nil {
			continue
		}
		target := r.Lookup(out.Key)
		if e.cfg.CheckpointInterval > 0 && e.mgr.Query().Op(downOp).Role != plan.RoleSink {
			n.mu.Lock()
			n.outBuf.Append(target, out)
			n.mu.Unlock()
		}
		if tn := e.nodes[target]; tn != nil {
			hops = append(hops, hop{target: tn, input: e.mgr.Query().InputIndex(n.inst.Op, downOp)})
		}
	}
	e.mu.RUnlock()
	for _, h := range hops {
		select {
		case h.target.in <- delivery{from: n.inst, input: h.input, t: out}:
		case <-h.target.stopped:
			// Receiver stopped; the tuple stays in our output buffer for
			// replay after its replacement is deployed.
		}
	}
}

// fireTimers invokes OnTime on TimeDriven operators.
func (e *Engine) fireTimers() {
	e.mu.RLock()
	var ns []*node
	for _, n := range e.nodes {
		ns = append(ns, n)
	}
	e.mu.RUnlock()
	now := e.NowMillis()
	for _, n := range ns {
		if n.failed.Load() || n.op == nil {
			continue
		}
		if td, ok := n.op.(operator.TimeDriven); ok {
			td.OnTime(now, func(k stream.Key, p any) { n.emit(k, p, now) })
		}
	}
}
