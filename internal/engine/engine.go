// Package engine is the live runtime: operator instances run as
// goroutines connected by channels, with the same state-management
// protocol as the simulated cluster — periodic checkpoints backed up to
// upstream hosts (Algorithm 1), per-upstream-instance duplicate
// detection, output-buffer retention and trimming, and the integrated
// fault-tolerant scale-out of Algorithm 3 for both bottleneck splitting
// and failure recovery.
//
// The data path is micro-batched and lock-light. Node input channels
// carry []delivery batches, so channel operations, duplicate detection
// and ack-watermark updates amortise across a batch. Each node routes
// through an atomically swapped route-table snapshot — downstream input
// indexes, routing state, target node pointers and output-buffer append
// handles, rebuilt only on Start/ScaleOut/Recover under an epoch counter
// — so the per-tuple path touches no engine lock and no plan-graph maps.
// Checkpoints are captured by a barrier processed on the node goroutine
// between batches (see lifecycle.go), which makes acks and operator
// state atomic with respect to processing. The narrow per-node mutex
// remains only for state shared across goroutines — acks inherited
// during replacement, output buffers trimmed by downstream checkpoints
// and repartitioned during scale out — and is taken once per batch, not
// per tuple.
//
// The engine trades the simulator's virtual time for wall-clock time; it
// is the runtime behind the runnable examples and can host any query
// built from plan.Query + operator factories.
package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"seep/internal/control"
	"seep/internal/core"
	"seep/internal/metrics"
	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

// Config parameterises the engine.
type Config struct {
	// CheckpointInterval is c, the checkpointing interval (0 disables
	// checkpointing and buffering).
	CheckpointInterval time.Duration
	// TimerInterval drives TimeDriven operators (default 250 ms).
	TimerInterval time.Duration
	// ChannelBuffer is the per-node input channel capacity in tuples
	// (default 4096). The channel itself carries batches, so its slot
	// count is ChannelBuffer/BatchSize.
	ChannelBuffer int
	// BatchSize is the maximum number of tuples coalesced into one
	// channel delivery (default 128; 1 disables batching and restores
	// per-tuple sends).
	BatchSize int
	// BatchLinger bounds how long sources hold a partial batch before
	// flushing (default 10 ms, the legacy source tick). Operator nodes
	// never linger: staged output flushes at the end of each input
	// batch. Under credit stalls a source adaptively stretches its
	// effective linger (up to maxLingerStretch ticks), trading latency
	// for batch fullness instead of piling batches onto a starved edge.
	BatchLinger time.Duration
	// QueueBound is the per-node credit ledger size in tuples: the
	// bound on in-flight work (queued plus being-processed batches)
	// toward any one node. 0 defaults to ChannelBuffer, which makes the
	// credit gate — where stalls are counted — the binding constraint
	// and channel sends non-blocking. See backpressure.go.
	QueueBound int
	// MemoryLimit, when positive, arms the managed-state memory ceiling
	// on every stateful instance: a store whose approximate resident
	// footprint exceeds this many bytes spills cold key ranges to a
	// scratch directory and materialises them transparently on access
	// (state spilling, §3.3). 0 keeps all state in memory.
	MemoryLimit int64
	// Delta enables incremental checkpoints for managed-state operators
	// (§3.2): between full checkpoints only the dirtied keys are shipped
	// and folded into the backup. Zero value disables.
	Delta state.DeltaPolicy
	// Hosted restricts which instances this engine hosts (nil = all).
	// The distributed runtime gives every worker the full query but a
	// disjoint hosted subset; emissions to instances hosted elsewhere go
	// through the Remote link registered with SetRemote.
	Hosted func(plan.InstanceID) bool
	// Backup, when set, receives checkpoint captures instead of the
	// in-process backup store: the distributed runtime ships them to the
	// coordinator, which owns the authoritative store and sends
	// acknowledgement trims back (TrimUpstream). Under an active Delta
	// policy, incremental captures go through ShipDelta and the
	// coordinator folds them into the stored base.
	Backup BackupSink
}

// BackupSink receives checkpoint captures in place of the in-process
// backup store.
type BackupSink interface {
	// ShipFull stores one full checkpoint. A non-nil error keeps the
	// node's previous backup authoritative (the round is skipped).
	ShipFull(cp *state.Checkpoint) error
	// ShipDelta ships one incremental checkpoint against the sink's
	// stored base. A non-nil error makes the engine re-capture and ship
	// a full checkpoint instead, so a delta is never load-bearing.
	ShipDelta(dc *state.DeltaCheckpoint) error
}

// Remote delivers batches to instances hosted by other processes — the
// network half of the node-link layer. Implementations must not retain
// ds past the call (the engine recycles batch containers), and must
// preserve per-sender FIFO order toward each destination, which the
// receiver's duplicate detection relies on.
type Remote interface {
	Deliver(to plan.InstanceID, ds []Delivery)
}

func (c Config) withDefaults() Config {
	if c.TimerInterval == 0 {
		c.TimerInterval = 250 * time.Millisecond
	}
	if c.ChannelBuffer == 0 {
		c.ChannelBuffer = 4096
	}
	if c.BatchSize == 0 {
		c.BatchSize = 128
	}
	if c.BatchSize < 1 {
		c.BatchSize = 1
	}
	if c.BatchLinger <= 0 {
		c.BatchLinger = 10 * time.Millisecond
	}
	return c
}

// channelSlots converts the tuple-denominated ChannelBuffer into batch
// slots.
func (c Config) channelSlots() int {
	slots := c.ChannelBuffer / c.BatchSize
	if slots < 1 {
		slots = 1
	}
	return slots
}

// creditSlots converts the tuple-denominated QueueBound into batch
// credits.
func (c Config) creditSlots() int {
	qb := c.QueueBound
	if qb <= 0 {
		qb = c.ChannelBuffer
	}
	slots := qb / c.BatchSize
	if slots < 1 {
		slots = 1
	}
	return slots
}

// Delivery is one tuple in flight between nodes, exported so the
// distributed runtime's links can carry the engine's native unit across
// the wire without per-tuple conversion.
type Delivery struct {
	// From is the emitting instance (duplicate detection is
	// per-upstream-instance).
	From plan.InstanceID
	// Input is the logical input-stream index at the receiver.
	Input int
	// T is the tuple itself.
	T stream.Tuple
}

// delivery is the internal shorthand.
type delivery = Delivery

// staged is one operator emission awaiting stamping and routing.
type staged struct {
	key     stream.Key
	payload any
	born    int64
}

// ctrlKind discriminates control messages processed on the node
// goroutine between data batches.
type ctrlKind int

const (
	// ctrlBarrier asks the node to capture a checkpoint between batches
	// and reply on ctrlMsg.reply (the §3.2 checkpoint barrier).
	ctrlBarrier ctrlKind = iota
	// ctrlTick fires the operator's TimeDriven hook on the node
	// goroutine, so window flushes share the single-threaded emit path.
	ctrlTick
)

type ctrlMsg struct {
	kind  ctrlKind
	now   int64         // ctrlTick: current time in millis
	reply chan *capture // ctrlBarrier: receives the captured state
}

// hop is one downstream logical operator in a node's route table, with
// everything the per-tuple path needs pre-resolved: the input index at
// the receiver, the routing state, and — aligned with the routing
// entries — target node pointers and output-buffer append handles.
type hop struct {
	op      plan.OpID
	input   int
	sink    bool
	buffer  bool // retain emitted tuples for replay (checkpointing on, non-sink)
	routing *state.Routing
	nodes   []*node
	// remotes is aligned with nodes: where nodes[i] is nil because the
	// instance is hosted by another process, remotes[i] carries the
	// engine's Remote link (nil in a fully local deployment, so the
	// local fast path is untouched).
	remotes []Remote
	// insts is the routing-entry targets, needed to address remote
	// deliveries. Nil when every target is local.
	insts   []plan.InstanceID
	handles []state.BufHandle
}

// routeTable is an immutable snapshot of a node's downstream fan-out.
// It is rebuilt under the engine lock on Start/ScaleOut/Recover and
// swapped in atomically; the emit path loads it while holding the
// node's own mutex, which serialises it against buffer repartitioning
// during a replacement.
type routeTable struct {
	epoch uint64
	hops  []hop
}

// nodeSet is an immutable snapshot of the live nodes, grouped the way
// the periodic loops consume them, so timer ticks and checkpoint rounds
// do not rebuild slices under the engine lock every interval.
type nodeSet struct {
	epoch    uint64
	nodes    []*node
	timed    []*node // hosts a TimeDriven operator
	stateful []*node // checkpointable (neither source nor sink)
	byInst   map[plan.InstanceID]*node
	// legacyHosts maps a retired merge victim to the node holding its
	// legacy output buffer, so acknowledgement trims and downstream
	// recovery replays addressed to the old identity still find the
	// retained tuples. Nil when no merge has happened.
	legacyHosts map[plan.InstanceID]*node
}

// node hosts one operator instance as a goroutine.
type node struct {
	e    *Engine
	inst plan.InstanceID
	spec *plan.OpSpec
	op   operator.Operator

	in   chan []delivery
	ctrl chan ctrlMsg
	// replayQueue is consumed before the channels on (re)start, so
	// replayed tuples precede newly routed ones.
	replayQueue []delivery

	// store is the system-owned managed state of op (nil for stateless
	// and legacy Stateful operators).
	store *state.Store

	// routes is the current route-table snapshot, loaded by the emit
	// path without any engine lock.
	routes atomic.Pointer[routeTable]

	// mu guards the cross-goroutine state: acks (inherited during
	// replacement), outBuf (trimmed by downstream checkpoints,
	// repartitioned during scale out), tsVec/outClock (captured during
	// restore), and the incremental-checkpoint bookkeeping
	// (ckptSeq/deltasSince/needFull, shared between the node goroutine's
	// barrier capture and the checkpoint loop's ship outcome). The data
	// path takes it once per batch: one acquisition to dup-filter and
	// ack a whole input batch, one to stamp/buffer/route a whole output
	// batch.
	// emitMu serialises whole emit passes (timestamp run + channel
	// sends) when several goroutines emit through the same node — the
	// source driver and concurrent InjectBatch callers. Stamping under
	// mu alone is not enough: once sends can BLOCK on the credit ledger
	// after mu is released, two concurrent emitters can deliver their
	// batches out of timestamp order on the same edge, and the
	// receiver's per-sender watermark then discards the late lower run
	// as a duplicate. Held across acquire+send; stalls under it resolve
	// via the receiver's stop or engine shutdown, and no control-plane
	// path takes it, so barriers and reroutes still proceed around a
	// stalled holder.
	emitMu sync.Mutex

	mu       sync.Mutex
	acks     map[plan.InstanceID]int64
	tsVec    stream.TSVector
	outClock stream.Clock
	outBuf   *state.Buffer
	// legacy holds output buffers inherited from scale-in victims, keyed
	// by the ORIGINAL emitting instance. Each is replayed and trimmed
	// under the owner's identity — the victims stamped tuples from
	// independent clocks, so folding them into outBuf would break the
	// per-sender monotonicity duplicate detection relies on. Entries
	// drain to empty as downstream checkpoints acknowledge them. Nil on
	// every node that is not a merge product.
	legacy  map[plan.InstanceID]*state.Buffer
	ckptSeq uint64
	// deltasSince counts deltas shipped since the last full checkpoint.
	deltasSince int
	// needFull forces the next checkpoint to be full: set initially, on
	// restore, and whenever a delta fails to apply at the backup host.
	needFull bool

	// Owned by the node goroutine: the output staging area and the
	// reusable emitter bound to it (curBorn carries the lineage birth
	// time of the tuple or tick being processed).
	pend    []staged
	curBorn int64
	emitFn  operator.Emitter

	// credits is the input credit ledger (backpressure.go): senders take
	// one credit per batch before the channel send and handleBatch
	// returns it after processing, bounding in-flight work toward this
	// node.
	credits creditLedger
	// creditStalls counts sender waits on this node's ledger; peakDepth
	// tracks the deepest input queue observed (batches).
	creditStalls metrics.Counter
	peakDepth    atomic.Int64

	stopped   chan struct{} // closed to stop the goroutine
	done      chan struct{} // closed when the goroutine exits
	failed    atomic.Bool
	processed metrics.Counter
}

// Engine runs one query.
type Engine struct {
	cfg       Config
	mgr       *core.Manager
	factories map[plan.OpID]operator.Factory

	// mu guards nodes, routings, records, failedAt and topology
	// rebuilds. The data path never takes it: hot-path readers go
	// through the atomic route-table and node-set snapshots.
	mu       sync.RWMutex
	nodes    map[plan.InstanceID]*node
	routings map[plan.OpID]*state.Routing
	records  []ReplaceRecord
	failedAt map[plan.InstanceID]int64
	epoch    uint64

	// set is the current nodeSet snapshot, rebuilt with the route
	// tables under mu.
	set atomic.Pointer[nodeSet]

	// batchPool recycles []delivery batches between emitters and
	// receivers: a batch is allocated (or reused) by emitChunk, travels
	// the channel, and is returned by handleBatch once processed.
	batchPool sync.Pool

	// remote is the link layer for instances hosted by other processes
	// (nil in a fully local deployment). Written by SetRemote before
	// Start; read by route-table builds.
	remote Remote

	start    time.Time
	started  atomic.Bool
	stopAll  chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// clockOffset shifts NowMillis into a foreign clock frame: the
	// distributed runtime aligns every worker engine to the
	// coordinator's job clock at start, so Born stamps and sink latency
	// observations across workers share one frame.
	clockOffset atomic.Int64

	// merges counts completed scale-in transitions (MergeInstances).
	merges metrics.Counter

	// creditStalls counts sender waits on any node's credit ledger.
	creditStalls metrics.Counter

	// spillMu guards spillStores: every store armed with a memory
	// ceiling, including stores of since-replaced nodes, closed (spill
	// files removed) on Stop.
	spillMu     sync.Mutex
	spillStores []*state.Store

	// linkFaults is the chaos harness's named fault point for the local
	// node-link layer: deliveries toward a listed destination operator
	// are delayed per emitted chunk, modelling a slow in-process link.
	// Nil when disarmed — the steady-state data path pays one atomic
	// pointer load per chunk, nothing else.
	linkFaults atomic.Pointer[map[plan.OpID]time.Duration]

	// shrinker, when set (EnableScaleIn), proposes merges from the same
	// utilisation reports the bottleneck detector consumes. Atomic so
	// enabling can race an already-running policy loop; the detector
	// itself is only ever touched by that loop.
	shrinker atomic.Pointer[control.ScaleInDetector]

	sources []*sourceDriver

	// Latency records sink-observed end-to-end latency in ms.
	Latency *metrics.Histogram
	// SinkCount counts tuples arriving at sinks.
	SinkCount metrics.Counter
	// DupDropped counts tuples discarded by per-upstream duplicate
	// detection (replays already reflected in the ack watermark).
	DupDropped metrics.Counter
	// OnSink observes every sink tuple (called from node goroutines).
	OnSink func(t stream.Tuple)
}

// New builds an engine for a validated query.
func New(cfg Config, q *plan.Query, factories map[plan.OpID]operator.Factory) (*Engine, error) {
	cfg = cfg.withDefaults()
	mgr, err := core.NewManager(q)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:       cfg,
		mgr:       mgr,
		factories: factories,
		nodes:     make(map[plan.InstanceID]*node),
		routings:  make(map[plan.OpID]*state.Routing),
		failedAt:  make(map[plan.InstanceID]int64),
		stopAll:   make(chan struct{}),
		Latency:   &metrics.Histogram{},
	}
	for _, opID := range q.Ops() {
		e.routings[opID] = mgr.Routing(opID)
		spec := q.Op(opID)
		for _, inst := range mgr.Instances(opID) {
			if cfg.Hosted != nil && !cfg.Hosted(inst) {
				continue
			}
			n, err := e.newNode(inst, spec)
			if err != nil {
				return nil, err
			}
			e.nodes[inst] = n
		}
	}
	e.mu.Lock()
	e.rebuildTopology()
	e.mu.Unlock()
	return e, nil
}

func (e *Engine) newNode(inst plan.InstanceID, spec *plan.OpSpec) (*node, error) {
	var op operator.Operator
	if spec.Role != plan.RoleSource && spec.Role != plan.RoleSink {
		f, ok := e.factories[inst.Op]
		if !ok {
			return nil, fmt.Errorf("engine: no factory for operator %q", inst.Op)
		}
		op = f()
	}
	n := &node{
		e:        e,
		inst:     inst,
		spec:     spec,
		op:       op,
		store:    operator.StoreOf(op),
		in:       make(chan []delivery, e.cfg.channelSlots()),
		ctrl:     make(chan ctrlMsg, 2),
		acks:     make(map[plan.InstanceID]int64),
		tsVec:    stream.NewTSVector(len(e.mgr.Query().Upstream(inst.Op))),
		outBuf:   state.NewBuffer(),
		needFull: true,
		stopped:  make(chan struct{}),
		done:     make(chan struct{}),
	}
	n.emitFn = func(k stream.Key, p any) { n.stage(k, p, n.curBorn) }
	n.credits.init(e.cfg.creditSlots())
	if e.cfg.MemoryLimit > 0 && n.store != nil {
		if err := n.store.EnableSpill("", e.cfg.MemoryLimit); err != nil {
			return nil, fmt.Errorf("engine: %s: %w", inst, err)
		}
		e.spillMu.Lock()
		e.spillStores = append(e.spillStores, n.store)
		e.spillMu.Unlock()
	}
	return n, nil
}

// rebuildTopology recomputes the node-set and per-node route-table
// snapshots under a fresh epoch. Invoked on New, Start and replace —
// never on the data path.
//
// seep:locks e.mu
func (e *Engine) rebuildTopology() {
	e.epoch++
	set := &nodeSet{
		epoch:  e.epoch,
		byInst: make(map[plan.InstanceID]*node, len(e.nodes)),
	}
	for inst, n := range e.nodes {
		set.nodes = append(set.nodes, n)
		set.byInst[inst] = n
	}
	sort.Slice(set.nodes, func(i, j int) bool {
		a, b := set.nodes[i].inst, set.nodes[j].inst
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Part < b.Part
	})
	for _, n := range set.nodes {
		if n.op != nil {
			if _, ok := n.op.(operator.TimeDriven); ok {
				set.timed = append(set.timed, n)
			}
		}
		if n.spec.Role != plan.RoleSource && n.spec.Role != plan.RoleSink {
			set.stateful = append(set.stateful, n)
		}
		n.mu.Lock()
		n.routes.Store(e.buildRoutes(n))
		for owner := range n.legacy {
			if set.legacyHosts == nil {
				set.legacyHosts = make(map[plan.InstanceID]*node)
			}
			set.legacyHosts[owner] = n
		}
		n.mu.Unlock()
	}
	e.set.Store(set)
}

// buildRoutes resolves one node's downstream fan-out against the
// current routing state and node map. Both locks are required: the
// buffer handles live inside n.outBuf, guarded by n.mu against
// concurrent trims, and holding n.mu across the whole build also lets
// ApplyReroute swap a table atomically with buffer repartitioning.
//
// seep:locks e.mu n.mu
func (e *Engine) buildRoutes(n *node) *routeTable {
	rt := &routeTable{epoch: e.epoch}
	q := e.mgr.Query()
	for _, downOp := range q.Downstream(n.inst.Op) {
		r := e.routings[downOp]
		if r == nil {
			continue
		}
		spec := q.Op(downOp)
		h := hop{
			op:      downOp,
			input:   q.InputIndex(n.inst.Op, downOp),
			sink:    spec.Role == plan.RoleSink,
			routing: r,
		}
		h.buffer = e.cfg.CheckpointInterval > 0 && !h.sink
		entries := r.Entries()
		h.nodes = make([]*node, len(entries))
		if h.buffer {
			h.handles = make([]state.BufHandle, len(entries))
		}
		for i, en := range entries {
			h.nodes[i] = e.nodes[en.Target]
			if h.nodes[i] == nil && e.remote != nil {
				// Hosted by another process: route through the link
				// layer, lazily materialising the aligned slices so a
				// fully local table costs nothing extra.
				if h.remotes == nil {
					h.remotes = make([]Remote, len(entries))
					h.insts = make([]plan.InstanceID, len(entries))
				}
				h.remotes[i] = e.remote
				h.insts[i] = en.Target
			}
			if h.buffer {
				h.handles[i] = n.outBuf.Handle(en.Target)
			}
		}
		rt.hops = append(rt.hops, h)
	}
	return rt
}

// Manager exposes the query manager.
func (e *Engine) Manager() *core.Manager { return e.mgr }

// NowMillis returns milliseconds since Start, shifted by the configured
// clock offset (zero outside the distributed runtime).
func (e *Engine) NowMillis() int64 {
	if e.start.IsZero() {
		return 0
	}
	return time.Since(e.start).Milliseconds() + e.clockOffset.Load()
}

// SetClockOffset aligns this engine's NowMillis to a foreign clock
// frame: NowMillis returns wall-time-since-Start plus ms. The
// distributed runtime calls it when the coordinator's start command
// arrives carrying the coordinator's current job time, so every
// worker's Born stamps and latency observations share the
// coordinator's frame (error ≈ one-way control-frame latency).
func (e *Engine) SetClockOffset(ms int64) { e.clockOffset.Store(ms) }

// Merges returns how many scale-in merges this engine has completed.
func (e *Engine) Merges() uint64 { return e.merges.Value() }

// Epoch returns the current topology epoch: it advances whenever the
// route-table snapshots are rebuilt (Start, ScaleOut, Recover).
func (e *Engine) Epoch() uint64 {
	if s := e.set.Load(); s != nil {
		return s.epoch
	}
	return 0
}

// Start launches all node goroutines, timers and checkpointing.
func (e *Engine) Start() {
	e.start = time.Now()
	e.mu.Lock()
	e.started.Store(true)
	for _, n := range e.nodes {
		e.startNode(n)
	}
	// Snapshot under the lock: a source added concurrently from here on
	// observes started == true and starts itself exactly once.
	sources := make([]*sourceDriver, len(e.sources))
	copy(sources, e.sources)
	e.mu.Unlock()

	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		tick := time.NewTicker(e.cfg.TimerInterval)
		defer tick.Stop()
		for {
			select {
			case <-e.stopAll:
				return
			case <-tick.C:
				e.fireTimers()
			}
		}
	}()
	if e.cfg.CheckpointInterval > 0 {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			tick := time.NewTicker(e.cfg.CheckpointInterval)
			defer tick.Stop()
			for {
				select {
				case <-e.stopAll:
					return
				case <-tick.C:
					e.checkpointAll()
				}
			}
		}()
	}
	for _, s := range sources {
		e.startSource(s)
	}
}

// Stop terminates all goroutines and waits for them. Idempotent: a
// graceful job stop (MsgStop) and a crash-stop (Worker.Kill) can race
// to tear down the same engine; both block until the one teardown
// finishes.
func (e *Engine) Stop() {
	e.stopOnce.Do(e.stop)
}

func (e *Engine) stop() {
	close(e.stopAll)
	e.mu.Lock()
	var ns []*node
	for _, n := range e.nodes {
		ns = append(ns, n)
	}
	e.mu.Unlock()
	for _, n := range ns {
		n.stop()
	}
	e.wg.Wait()
	// Disarm spilling last: CloseSpill materialises anything still on
	// disk (post-run state reads stay exact) and removes the scratch
	// files.
	e.spillMu.Lock()
	stores := e.spillStores
	e.spillStores = nil
	e.spillMu.Unlock()
	for _, st := range stores {
		st.CloseSpill()
	}
}

// startNode launches the node goroutine.
//
// seep:locks e.mu
func (e *Engine) startNode(n *node) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer close(n.done)
		if len(n.replayQueue) > 0 {
			n.handleBatch(n.replayQueue)
			n.replayQueue = nil
		}
		for {
			select {
			case <-n.stopped:
				// Drain to keep senders unblocked until channels empty.
				for {
					select {
					case <-n.in:
					case <-n.ctrl:
					default:
						return
					}
				}
			case c := <-n.ctrl:
				n.handleCtrl(c)
			case b := <-n.in:
				n.handleBatch(b)
			}
		}
	}()
}

func (n *node) stop() {
	select {
	case <-n.stopped:
	default:
		close(n.stopped)
	}
}

// handleCtrl processes a control message on the node goroutine, between
// data batches.
func (n *node) handleCtrl(c ctrlMsg) {
	switch c.kind {
	case ctrlBarrier:
		c.reply <- n.captureCheckpoint()
	case ctrlTick:
		if n.failed.Load() || n.op == nil {
			return
		}
		if td, ok := n.op.(operator.TimeDriven); ok {
			n.curBorn = c.now
			td.OnTime(c.now, n.emitFn)
			n.flushPending()
		}
	}
}

// handleBatch processes one input batch on the node goroutine:
// duplicate detection and ack-watermark advancement for the whole batch
// under one lock acquisition, then per-tuple operator invocation, then
// one flush of the staged output. The batch container is recycled once
// processing finishes (operators receive tuples by value and may retain
// payloads, never the batch).
func (n *node) handleBatch(ds []delivery) {
	defer n.e.putBatch(ds)
	// The batch's credit is held until processing completes, so the
	// ledger bounds in-flight work, not just the queue.
	defer n.releaseCredit()
	n.notePeakDepth()
	if n.failed.Load() || len(ds) == 0 {
		return
	}
	// Duplicate detection and watermark advancement, amortised: a batch
	// is built by one sender, so deliveries arrive in runs sharing a
	// `from` (and input index) with monotone timestamps — each run costs
	// one ack-map read and one write instead of two hashed map
	// operations per tuple. Mixed-run batches (replay queues) fall out
	// naturally: a run ends where `from` changes.
	var dups uint64
	n.mu.Lock()
	kept := ds[:0]
	for i := 0; i < len(ds); {
		from := ds[i].From
		wm := n.acks[from]
		last := wm
		j := i
		for ; j < len(ds) && ds[j].From == from; j++ {
			if ds[j].T.TS <= last {
				dups++
				continue
			}
			last = ds[j].T.TS
			kept = append(kept, ds[j])
		}
		if last > wm {
			n.acks[from] = last
			n.tsVec.Advance(ds[i].Input, last)
		}
		i = j
	}
	n.mu.Unlock()
	if dups > 0 {
		n.e.DupDropped.Add(dups)
	}
	if len(kept) == 0 {
		return
	}
	n.processed.Add(uint64(len(kept)))

	if n.spec.Role == plan.RoleSink {
		now := n.e.NowMillis()
		for _, d := range kept {
			lat := now - d.T.Born
			if lat < 0 {
				lat = 0
			}
			n.e.Latency.Observe(lat)
			if n.e.OnSink != nil {
				n.e.OnSink(d.T)
			}
		}
		n.e.SinkCount.Add(uint64(len(kept)))
		return
	}
	if n.op == nil {
		return
	}
	ctx := operator.Context{Now: n.e.NowMillis()}
	for _, d := range kept {
		ctx.Input = d.Input
		n.curBorn = d.T.Born
		n.op.OnTuple(ctx, d.T, n.emitFn)
	}
	n.flushPending()
}

// stage buffers one emission on the node goroutine, flushing early when
// a full batch has accumulated (expansive operators can emit many
// tuples per input).
func (n *node) stage(key stream.Key, payload any, born int64) {
	if born == 0 {
		born = n.e.NowMillis()
	}
	n.pend = append(n.pend, staged{key: key, payload: payload, born: born})
	if len(n.pend) >= n.e.cfg.BatchSize {
		n.flushPending()
	}
}

// flushPending routes and sends everything staged on the node
// goroutine, then clears the staging slots so retained payload
// references do not outlive the flush.
func (n *node) flushPending() {
	if len(n.pend) == 0 {
		return
	}
	n.emitAll(n.pend)
	clear(n.pend)
	n.pend = n.pend[:0]
}

// emitAll stamps, buffers, routes and sends a slice of emissions in
// chunks of the configured batch size. Safe from any goroutine (node
// goroutines, source drivers, InjectBatch): each chunk takes the node
// mutex once.
func (n *node) emitAll(items []staged) {
	bs := n.e.cfg.BatchSize
	for len(items) > 0 {
		chunk := items
		if len(chunk) > bs {
			chunk = items[:bs]
		}
		items = items[len(chunk):]
		n.emitChunk(chunk)
	}
}

// getBatch returns an empty delivery batch with capacity for n tuples,
// reusing a processed one when the pool has a large enough fit.
func (e *Engine) getBatch(n int) []delivery {
	if v := e.batchPool.Get(); v != nil {
		ds := *v.(*[]delivery)
		if cap(ds) >= n {
			return ds[:0]
		}
	}
	return make([]delivery, 0, n)
}

// putBatch recycles a fully processed batch. Elements are cleared
// first so pooled backing arrays do not pin already-processed tuple
// payloads against the garbage collector.
func (e *Engine) putBatch(ds []delivery) {
	if cap(ds) == 0 {
		return
	}
	clear(ds)
	ds = ds[:0]
	e.batchPool.Put(&ds)
}

// outSend is one batch ready for delivery — over a channel to a local
// node, or through the Remote link to an instance hosted elsewhere.
type outSend struct {
	target *node
	remote Remote
	inst   plan.InstanceID
	ds     []delivery
}

// emitChunk is the core of the batched data path: under ONE acquisition
// of n.mu it loads the route-table snapshot, reserves a run of output
// timestamps, appends retained tuples to the output buffer through the
// pre-resolved handles, and groups deliveries per target; the channel
// sends happen after the lock is released. Loading the table inside the
// lock serialises emission against buffer repartitioning during a
// replacement: a tuple either lands in the buffer before repartitioning
// (and is replayed under the new routing) or is routed with the new
// table.
func (n *node) emitChunk(chunk []staged) {
	// Per-sender FIFO: hold emitMu from timestamp assignment through the
	// last send, so concurrent emitters (driver + InjectBatch) cannot
	// deliver their runs out of order on a credit-starved edge.
	n.emitMu.Lock()
	defer n.emitMu.Unlock()
	n.mu.Lock()
	rt := n.routes.Load()
	if rt == nil {
		n.mu.Unlock()
		return
	}
	base := n.outClock.NextN(len(chunk))
	var sends []outSend
	for hi := range rt.hops {
		h := &rt.hops[hi]
		if len(h.nodes) == 1 {
			// Unpartitioned downstream — the common case: no routing
			// lookup, no per-tuple grouping.
			tn := h.nodes[0]
			var rm Remote
			if tn == nil && h.remotes != nil {
				rm = h.remotes[0]
			}
			var ds []delivery
			if tn != nil || rm != nil {
				ds = n.e.getBatch(len(chunk))
			}
			for i := range chunk {
				s := &chunk[i]
				t := stream.Tuple{TS: base + int64(i), Key: s.key, Born: s.born, Payload: s.payload}
				if h.buffer {
					h.handles[0].Append(t)
				}
				if ds != nil {
					ds = append(ds, delivery{From: n.inst, Input: h.input, T: t})
				}
			}
			if tn != nil {
				sends = append(sends, outSend{target: tn, ds: ds})
			} else if rm != nil {
				sends = append(sends, outSend{remote: rm, inst: h.insts[0], ds: ds})
			}
			continue
		}
		// Partitioned downstream: group this chunk's tuples by routing
		// entry. Chunks are small, so a linear scan over the open sends
		// beats a map.
		start := len(sends)
		for i := range chunk {
			s := &chunk[i]
			idx := h.routing.LookupIndex(s.key)
			t := stream.Tuple{TS: base + int64(i), Key: s.key, Born: s.born, Payload: s.payload}
			if h.buffer {
				h.handles[idx].Append(t)
			}
			tn := h.nodes[idx]
			var rm Remote
			var ri plan.InstanceID
			if tn == nil {
				if h.remotes == nil || h.remotes[idx] == nil {
					continue
				}
				rm, ri = h.remotes[idx], h.insts[idx]
			}
			var out *outSend
			for j := start; j < len(sends); j++ {
				if tn != nil && sends[j].target == tn {
					out = &sends[j]
					break
				}
				if tn == nil && sends[j].target == nil && sends[j].inst == ri {
					out = &sends[j]
					break
				}
			}
			if out == nil {
				// Capacity for the whole chunk up front: one batch per
				// (hop, target) instead of log(len) growth reallocs.
				sends = append(sends, outSend{target: tn, remote: rm, inst: ri, ds: n.e.getBatch(len(chunk))})
				out = &sends[len(sends)-1]
			}
			out.ds = append(out.ds, delivery{From: n.inst, Input: h.input, T: t})
		}
	}
	n.mu.Unlock()
	// Chaos-harness fault point "slow-link": one atomic load per chunk
	// when disarmed; when armed, a delivery toward a faulted downstream
	// operator waits out the configured delay before the send.
	if fm := n.e.linkFaults.Load(); fm != nil {
		for i := range sends {
			op := sends[i].inst.Op
			if sends[i].target != nil {
				op = sends[i].target.inst.Op
			}
			if d := (*fm)[op]; d > 0 {
				time.Sleep(d)
			}
		}
	}
	for i := range sends {
		s := &sends[i]
		if s.target == nil {
			// Remote instance: the link encodes (or copies) the batch
			// synchronously, so the container can be recycled here. A
			// link to a failed host drops the batch — the tuples stay in
			// our output buffer for replay after recovery, exactly like
			// the stopped-receiver case below.
			s.remote.Deliver(s.inst, s.ds)
			n.e.putBatch(s.ds)
			continue
		}
		// Credit gate: take one credit toward the receiver before the
		// channel send. With the default QueueBound the channel itself
		// then never blocks — stalls happen (and are counted) here,
		// where no locks are held.
		if !s.target.acquireCredit() {
			// Receiver stopped or engine shut down while starved; the
			// tuples stay in our output buffer for replay.
			n.e.putBatch(s.ds)
			continue
		}
		select {
		case s.target.in <- s.ds:
		case <-s.target.stopped:
			// Receiver stopped; the tuples stay in our output buffer for
			// replay after its replacement is deployed. Hand the unused
			// credit back.
			s.target.releaseCredit()
			n.e.putBatch(s.ds)
		}
	}
}

// fireTimers delivers a tick to every node hosting a TimeDriven
// operator, to be processed on that node's goroutine. The node set is
// an atomic snapshot — no engine lock, no per-tick slice rebuild. A
// node whose control queue is full skips the tick; the next one follows
// within a timer interval.
func (e *Engine) fireTimers() {
	set := e.set.Load()
	if set == nil {
		return
	}
	now := e.NowMillis()
	for _, n := range set.timed {
		if n.failed.Load() {
			continue
		}
		select {
		case n.ctrl <- ctrlMsg{kind: ctrlTick, now: now}:
		default:
		}
	}
}

// InjectLinkDelay arms the "slow-link" fault point: every delivery
// toward an instance of op — local channel send or remote link — waits
// d before it is handed over, modelling a degraded link to that
// operator's hosts. Chaos-harness use only; disarmed engines pay one
// atomic pointer load per emitted chunk.
func (e *Engine) InjectLinkDelay(op plan.OpID, d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	next := make(map[plan.OpID]time.Duration)
	if cur := e.linkFaults.Load(); cur != nil {
		for k, v := range *cur {
			next[k] = v
		}
	}
	next[op] = d
	e.linkFaults.Store(&next)
}

// ClearLinkFaults heals every fault armed with InjectLinkDelay.
func (e *Engine) ClearLinkFaults() { e.linkFaults.Store(nil) }
