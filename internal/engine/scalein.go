package engine

// Scale in (partition merge, §3.3): the live counterpart of replace()
// in lifecycle.go, with the opposite cardinality — sibling partitions
// with adjacent key ranges collapse into one instance. The transition
// follows the same ordering discipline that makes replace() safe (new
// route tables installed before upstream buffers are repartitioned,
// replays enqueued before anything the merged instance emits), plus
// three merge-specific rules that keep it exactly-once:
//
//  1. Victims stop BEFORE their final checkpoints are captured, so the
//     captures reflect everything they ever processed and emitted.
//     There is no post-checkpoint processing window to reconstruct:
//     tuples in flight to a stopped victim are dropped unprocessed and
//     stay retained upstream for replay.
//  2. The victims' retained output replays downstream under their
//     ORIGINAL identities. Each victim stamped tuples from its own
//     logical clock, so the sequences are only matched correctly by the
//     per-sender duplicate-detection watermarks downstream already
//     holds. The buffers survive as the merged node's legacy buffers
//     (state.Checkpoint.Legacy) until downstream checkpoints
//     acknowledge them.
//  3. The merged duplicate-detection watermark per upstream is the
//     victims' MINIMUM (state.MergeCheckpoints), and upstream buffers
//     are trimmed to each victim's own final watermark before
//     repartitioning, so the replay set is exactly the union of tuples
//     no victim had processed.

import (
	"fmt"

	"seep/internal/plan"
	"seep/internal/state"
)

// MergeInstances merges two or more sibling partitions owning adjacent
// key ranges into one instance — scale in. A fresh final checkpoint of
// every victim is captured after it stops, shipped to the backup store
// and used to plan the merge, so the merged state reflects everything
// the victims processed.
//
// If planning fails after the victims have stopped (e.g. a backup host
// was lost concurrently), the victims are left stopped and the error is
// returned; each can be recovered individually via Recover, exactly as
// after a crash.
func (e *Engine) MergeInstances(victims []plan.InstanceID) error {
	if len(victims) < 2 {
		return fmt.Errorf("engine: merge needs at least two victims, got %d", len(victims))
	}
	if e.cfg.Backup != nil {
		return fmt.Errorf("engine: merges on a distributed worker are driven by the coordinator")
	}
	if e.cfg.CheckpointInterval <= 0 {
		return fmt.Errorf("engine: scale in requires checkpointing (CheckpointInterval > 0)")
	}
	op := victims[0].Op
	q := e.mgr.Query()
	spec := q.Op(op)
	if spec == nil {
		return fmt.Errorf("engine: unknown operator %q", op)
	}
	if spec.Role == plan.RoleSource || spec.Role == plan.RoleSink {
		return fmt.Errorf("engine: sources and sinks are not merged (§2.2)")
	}

	// Freeze the victims: marking them failed stops batch processing and
	// blocks any concurrent replace/checkpoint of the same instances;
	// stop() ends their goroutines, which drain (and drop) queued input
	// — those tuples are retained upstream and replayed below.
	e.mu.Lock()
	select {
	case <-e.stopAll:
		e.mu.Unlock()
		return fmt.Errorf("engine: stopping; %v not merged", victims)
	default:
	}
	ns := make([]*node, len(victims))
	seen := make(map[plan.InstanceID]bool, len(victims))
	for i, v := range victims {
		if v.Op != op {
			e.mu.Unlock()
			return fmt.Errorf("engine: merge across operators %q and %q", op, v.Op)
		}
		if seen[v] {
			e.mu.Unlock()
			return fmt.Errorf("engine: duplicate merge victim %s", v)
		}
		seen[v] = true
		n := e.nodes[v]
		if n == nil || n.failed.Load() {
			e.mu.Unlock()
			return fmt.Errorf("engine: %s is not live", v)
		}
		ns[i] = n
	}
	for _, n := range ns {
		n.failed.Store(true)
	}
	running := e.started.Load()
	startedAt := e.NowMillis()
	e.mu.Unlock()

	for _, n := range ns {
		n.stop()
		if running {
			<-n.done
		}
	}

	// Final captures: everything each victim processed, with its exact
	// acknowledgement watermarks. Shipping them trims upstream buffers
	// to those watermarks, making the retained set the exact per-victim
	// unprocessed remainder. Forced full: a delta cannot seed a merge.
	for i, n := range ns {
		n.mu.Lock()
		n.needFull = true
		n.mu.Unlock()
		cap := n.captureCheckpoint()
		if cap == nil || cap.full == nil {
			// State failed to encode; the last shipped checkpoint stays
			// authoritative and upstream replay covers the gap (the same
			// skip semantics as a failed periodic checkpoint round).
			continue
		}
		host, err := e.mgr.BackupTarget(victims[i])
		if err != nil {
			continue
		}
		if err := e.mgr.Backups().Store(host, cap.full); err != nil {
			continue
		}
		e.trimAcked(victims[i], cap.full.Acks)
	}

	mp, err := e.mgr.PlanMerge(victims)
	if err != nil {
		// The victims are already stopped: recover each from its final
		// checkpoint through the normal path, exactly as after a crash,
		// so a failed plan (e.g. a backup host lost concurrently) cannot
		// strand their key ranges. Policy-driven merges have no caller
		// to clean up after them.
		for _, v := range victims {
			if rerr := e.replace(v, 1, true); rerr != nil {
				err = fmt.Errorf("%w; recover %s: %v", err, v, rerr)
			}
		}
		return fmt.Errorf("engine: plan merge of %v failed (victims recovered): %w", victims, err)
	}

	// Build and restore the merged node before exposing it to traffic.
	// restore() installs the victims' buffers as legacy buffers.
	recoverMerged := func(cause error) error {
		// Planning already replaced the victims with the merged instance
		// in the graph, and its merged checkpoint is stored: recover IT
		// so the transition completes through the recovery machinery.
		if rerr := e.replace(mp.NewInstance, 1, true); rerr != nil {
			return fmt.Errorf("engine: merge of %v: %w (recovery of %s also failed: %v)", victims, cause, mp.NewInstance, rerr)
		}
		return fmt.Errorf("engine: merge of %v completed via recovery: %w", victims, cause)
	}
	nn, err := e.newNode(mp.NewInstance, spec)
	if err != nil {
		return recoverMerged(err)
	}
	if err := nn.restore(mp.Checkpoint); err != nil {
		return recoverMerged(err)
	}

	replayed := 0
	e.mu.Lock()
	select {
	case <-e.stopAll:
		e.mu.Unlock()
		return fmt.Errorf("engine: stopping; %v not merged", victims)
	default:
	}
	for _, v := range victims {
		delete(e.nodes, v)
	}
	e.nodes[nn.inst] = nn
	e.routings[op] = mp.Routing
	// Install the new epoch's route tables and node set before touching
	// any upstream buffer (the replace() ordering argument): emitters
	// load the table inside their node lock, so every tuple either lands
	// in a buffer before it is repartitioned (and is replayed under the
	// merged routing) or routes to the merged instance directly.
	e.rebuildTopology()

	// No acknowledgement inheritance: the merged instance is a brand-new
	// sender whose clock starts above both victims' clocks, and the
	// victims' own output replays under their original identities below,
	// matched by the watermarks downstream already holds for them.
	replayTo := make(map[*node][]delivery)
	for i, v := range victims {
		replayed += e.collectDownstreamReplay(v, op, mp.VictimCheckpoints[i].Buffer, replayTo)
		for _, owner := range state.LegacyOwners(mp.VictimCheckpoints[i].Legacy) {
			replayed += e.collectDownstreamReplay(owner, op, mp.VictimCheckpoints[i].Legacy[owner], replayTo)
		}
	}
	for tn, ds := range replayTo {
		select {
		case tn.in <- ds:
		case <-tn.stopped:
		}
	}

	// Upstream buffers: repartition under the merged routing and queue
	// the union of the victims' unprocessed remainders for replay.
	for _, upOp := range q.Upstream(op) {
		input := q.InputIndex(upOp, op)
		for _, upInst := range e.mgr.Instances(upOp) {
			un := e.nodes[upInst]
			if un == nil {
				continue
			}
			un.mu.Lock()
			un.outBuf.Repartition(op, mp.Routing)
			for _, t := range un.outBuf.Tuples(nn.inst) {
				replayed++
				nn.replayQueue = append(nn.replayQueue, delivery{From: upInst, Input: input, T: t})
			}
			for _, owner := range state.LegacyOwners(un.legacy) {
				if owner.Op != upOp {
					continue
				}
				lb := un.legacy[owner]
				lb.Repartition(op, mp.Routing)
				for _, t := range lb.Tuples(nn.inst) {
					replayed++
					nn.replayQueue = append(nn.replayQueue, delivery{From: owner, Input: input, T: t})
				}
			}
			un.mu.Unlock()
		}
	}

	if running {
		e.startNode(nn)
	}
	e.merges.Inc()
	e.records = append(e.records, ReplaceRecord{
		Victim:         victims[0],
		Pi:             1,
		Merge:          true,
		StartedAt:      startedAt,
		CompletedAt:    e.NowMillis(),
		ReplayedTuples: replayed,
	})
	e.mu.Unlock()

	// Ship a fresh checkpoint of the merged node immediately: it
	// supersedes the plan-time artifact in the backup store, so a
	// failure right after the merge recovers from a self-consistent
	// capture instead of the synthesized one.
	e.checkpointNode(nn)
	return nil
}
