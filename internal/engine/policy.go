package engine

import (
	"time"

	"seep/internal/control"
	"seep/internal/plan"
)

// UtilSampler estimates an instance's load in [0, ∞) for the scaling
// policy. The live engine cannot read simulated CPU budgets, so the
// default signal is backpressure: the fill fraction of the node's input
// channel. A queue that stays near capacity means the operator cannot
// keep up with its input — the live equivalent of the paper's CPU
// utilisation reports crossing δ.
type UtilSampler func(inst plan.InstanceID) (util float64, ok bool)

// QueueFillSampler returns the default backpressure-based sampler. The
// input channel carries micro-batches, so the fill fraction is measured
// in batch slots; a queue near capacity still means the operator cannot
// drain its input. With credit-based flow control the ledger, not the
// channel, is the binding constraint — senders stall before the channel
// fills — so the sampler reads whichever signal is stronger: channel
// occupancy or the fraction of the node's credits currently consumed by
// queued and in-flight batches.
func (e *Engine) QueueFillSampler() UtilSampler {
	return func(inst plan.InstanceID) (float64, bool) {
		set := e.set.Load()
		if set == nil {
			return 0, false
		}
		n := set.byInst[inst]
		if n == nil || n.failed.Load() {
			return 0, false
		}
		util := float64(len(n.in)) / float64(cap(n.in))
		if c := n.credits.cap; c > 0 {
			if held := float64(c-n.credits.avail.Load()) / float64(c); held > util {
				util = held
			}
		}
		return util, true
	}
}

// EnablePolicy starts the bottleneck detector loop: every
// policy.ReportEveryMillis the sampler is read for every non-source,
// non-sink instance, and instances crossing the threshold k consecutive
// times are scaled out to two partitions (Algorithm 3 via ScaleOut).
// Call before Start; pass nil to use QueueFillSampler.
func (e *Engine) EnablePolicy(policy control.Policy, sampler UtilSampler) {
	if sampler == nil {
		sampler = e.QueueFillSampler()
	}
	detector := control.NewDetector(policy)
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		tick := time.NewTicker(time.Duration(policy.ReportEveryMillis) * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-e.stopAll:
				return
			case <-tick.C:
				e.policyRound(detector, sampler)
			}
		}
	}()
}

func (e *Engine) policyRound(detector *control.Detector, sampler UtilSampler) {
	q := e.mgr.Query()
	var reports []control.Report
	for _, opID := range q.Ops() {
		spec := q.Op(opID)
		if spec.Role == plan.RoleSource || spec.Role == plan.RoleSink {
			continue
		}
		for _, inst := range e.mgr.Instances(opID) {
			if util, ok := sampler(inst); ok {
				reports = append(reports, control.Report{Inst: inst, Util: util})
			}
		}
	}
	for _, victim := range detector.Observe(reports) {
		spec := q.Op(victim.Op)
		if spec != nil && spec.MaxParallelism > 0 && e.mgr.Parallelism(victim.Op) >= spec.MaxParallelism {
			continue
		}
		// Scale out in the policy goroutine; failures (e.g. victim just
		// replaced) simply unmute for the next round.
		if err := e.ScaleOut(victim, 2); err != nil {
			detector.Unmute(victim)
		}
	}
	shrinker := e.shrinker.Load()
	if shrinker == nil {
		return
	}
	for _, op := range shrinker.Observe(reports) {
		if pair := e.adjacentPair(op, reports); pair != nil {
			_ = e.MergeInstances(pair)
		}
		// Completed merges produce a fresh instance ID, so the operator
		// can shrink again once its partitions idle anew.
		shrinker.Unmute(op)
	}
}

// EnableScaleIn activates policy-driven scale in alongside EnablePolicy:
// when every partition of an operator reports utilisation below the low
// watermark for the configured number of consecutive rounds, the
// adjacent pair with the lowest combined load is merged. The low
// watermark must sit well below half the scale-out threshold so a merge
// cannot immediately re-trigger a split (the hysteresis band; enforced
// at the options layer). Requires EnablePolicy (the shrinker rides the
// policy loop's reports).
func (e *Engine) EnableScaleIn(p control.ScaleInPolicy) {
	e.shrinker.Store(control.NewScaleInDetector(p))
}

// adjacentPair picks the pair of live partitions of op owning adjacent
// key ranges with the lowest combined utilisation, or nil.
func (e *Engine) adjacentPair(op plan.OpID, reports []control.Report) []plan.InstanceID {
	routing := e.mgr.Routing(op)
	if routing == nil {
		return nil
	}
	set := e.set.Load()
	return control.AdjacentPair(routing.Entries(), reports, func(inst plan.InstanceID) bool {
		if set == nil {
			return false
		}
		n := set.byInst[inst]
		return n != nil && !n.failed.Load()
	})
}
