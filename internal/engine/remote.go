package engine

// Distributed-runtime support: the engine's node-link layer is pluggable
// — route tables resolve each downstream instance either to a local
// *node (the in-process zero-copy batch path) or to the Remote link
// registered here. The coordinator drives topology transitions over the
// wire through ApplyReroute / AdoptInstance / Retire, which are the
// distributed decomposition of replace() in lifecycle.go: the same
// ordering guarantees (route tables installed atomically with buffer
// repartitioning, replays preceding fresh tuples per upstream sender,
// ack inheritance before re-emissions arrive) hold, but each step runs
// on the worker that owns the affected state, sequenced by the
// coordinator.

import (
	"fmt"

	"seep/internal/plan"
	"seep/internal/state"
)

// SetRemote registers the link layer used to reach instances hosted by
// other processes. Call before Start.
func (e *Engine) SetRemote(r Remote) {
	e.mu.Lock()
	e.remote = r
	e.rebuildTopology()
	e.mu.Unlock()
}

// DeliverLocal injects a batch received from the wire into the hosted
// instance's input channel, blocking for backpressure exactly like a
// local sender. The engine takes ownership of ds (it is recycled after
// processing); callers must not retain it. Returns false when the
// instance is not hosted here (or already stopped), so the caller can
// stash pre-deployment arrivals.
func (e *Engine) DeliverLocal(to plan.InstanceID, ds []Delivery) bool {
	if len(ds) == 0 {
		return true
	}
	set := e.set.Load()
	if set == nil {
		return false
	}
	n := set.byInst[to]
	if n == nil || n.failed.Load() {
		return false
	}
	select {
	case n.in <- ds:
		return true
	case <-n.stopped:
		return false
	}
}

// TrimUpstream applies an acknowledgement watermark received from the
// coordinator: owner's checkpoint is safely stored, so the local node
// hosting up may trim its retained output for owner through ts
// (Algorithm 1 line 4, over the wire). When up is a retired merge
// victim, the trim lands on the legacy buffer its merge product hosts.
func (e *Engine) TrimUpstream(up, owner plan.InstanceID, ts int64) {
	set := e.set.Load()
	if set == nil {
		return
	}
	if n := set.byInst[up]; n != nil {
		n.mu.Lock()
		n.outBuf.TrimInstance(owner, ts)
		n.mu.Unlock()
		return
	}
	if hn := set.legacyHosts[up]; hn != nil {
		hn.mu.Lock()
		if lb := hn.legacy[up]; lb != nil {
			lb.TrimInstance(owner, ts)
		}
		hn.mu.Unlock()
	}
}

// ApplyReroute installs a coordinator-planned routing change for op:
// the victim's entries are replaced by newInsts. For every local
// upstream node the new route table is swapped, the output buffer
// repartitioned and the retained tuples for the new instances replayed
// through the Remote link — all under that node's mutex, so a fresh
// emission can never overtake its replayed predecessors on the link's
// per-destination FIFO. inherit renames duplicate-detection watermarks
// on local nodes (π=1 recovery), and must be applied on every worker
// before the replacement instance starts re-emitting (the coordinator
// sequences Deploy after all reroute acknowledgements). Returns the
// number of tuples replayed from local buffers.
func (e *Engine) ApplyReroute(op plan.OpID, routing *state.Routing, newInsts []plan.InstanceID, inherit map[plan.InstanceID]plan.InstanceID) int {
	replayed := 0
	e.mu.Lock()
	defer e.mu.Unlock()
	e.routings[op] = routing
	if len(inherit) > 0 {
		for _, dn := range e.nodes {
			dn.mu.Lock()
			for old, nw := range inherit {
				if ts, ok := dn.acks[old]; ok {
					dn.acks[nw] = ts
					delete(dn.acks, old)
				}
			}
			dn.mu.Unlock()
		}
	}
	q := e.mgr.Query()
	for _, upOp := range q.Upstream(op) {
		input := q.InputIndex(upOp, op)
		for _, un := range e.nodes {
			if un.inst.Op != upOp {
				continue
			}
			un.mu.Lock()
			// Swap the table and repartition atomically with respect to
			// this node's emissions: emitChunk loads the table under the
			// same mutex, so every tuple is either retained before the
			// repartition (and replayed below, ahead of anything emitted
			// under the new table) or routed by the new table afterwards.
			un.routes.Store(e.buildRoutes(un))
			un.outBuf.Repartition(op, routing)
			if e.remote != nil {
				for _, ni := range newInsts {
					tuples := un.outBuf.Tuples(ni)
					if len(tuples) == 0 {
						continue
					}
					ds := make([]Delivery, len(tuples))
					for i, t := range tuples {
						ds[i] = Delivery{From: un.inst, Input: input, T: t}
					}
					replayed += len(tuples)
					e.remote.Deliver(ni, ds)
				}
				// Legacy buffers of retired upstream merge victims
				// repartition and replay the same way, under the retired
				// sender's identity.
				for _, owner := range state.LegacyOwners(un.legacy) {
					if owner.Op != upOp {
						continue
					}
					lb := un.legacy[owner]
					lb.Repartition(op, routing)
					for _, ni := range newInsts {
						tuples := lb.Tuples(ni)
						if len(tuples) == 0 {
							continue
						}
						ds := make([]Delivery, len(tuples))
						for i, t := range tuples {
							ds[i] = Delivery{From: owner, Input: input, T: t}
						}
						replayed += len(tuples)
						e.remote.Deliver(ni, ds)
					}
				}
			}
			un.mu.Unlock()
		}
	}
	// Refresh the node-set snapshot and every other table under a new
	// epoch (downstream nodes of op are unaffected, but snapshots must
	// agree on the epoch).
	e.rebuildTopology()
	return replayed
}

// AdoptInstance deploys a replacement instance planned elsewhere: the
// node is built, restored from the partitioned checkpoint, handed the
// stashed replay (tuples that arrived from upstream workers before the
// deployment) and started. The checkpoint's own buffered output is
// replayed downstream first — before the node processes anything — so
// it precedes the instance's re-emissions, mirroring replace(). Returns
// the number of tuples replayed downstream.
func (e *Engine) AdoptInstance(cp *state.Checkpoint, routing *state.Routing, replay []Delivery) (int, error) {
	inst := cp.Instance
	spec := e.mgr.Query().Op(inst.Op)
	if spec == nil {
		return 0, fmt.Errorf("engine: adopt %s: unknown operator", inst)
	}
	nn, err := e.newNode(inst, spec)
	if err != nil {
		return 0, err
	}
	if err := nn.restore(cp); err != nil {
		return 0, err
	}
	nn.replayQueue = replay
	replayed := 0
	e.mu.Lock()
	select {
	case <-e.stopAll:
		e.mu.Unlock()
		return 0, fmt.Errorf("engine: stopping; %s not adopted", inst)
	default:
	}
	if _, dup := e.nodes[inst]; dup {
		e.mu.Unlock()
		return 0, fmt.Errorf("engine: %s already hosted", inst)
	}
	e.nodes[inst] = nn
	if routing != nil {
		e.routings[inst.Op] = routing
	}
	e.rebuildTopology()
	// The victim's buffered output replays to downstream operators under
	// the current routing (replace() line "the victim's own buffered
	// output replays..."), enqueued before the new node starts so it
	// precedes anything the instance emits itself. Legacy buffers the
	// checkpoint carries (the instance is a merge product) replay under
	// their original owners' identities.
	// Remote batches must be single-sender: the wire batch frame carries
	// one From, so remote replays group by (destination, sender).
	type remoteKey struct {
		to   plan.InstanceID
		from plan.InstanceID
	}
	q := e.mgr.Query()
	replayTo := make(map[*node][]Delivery)
	remoteTo := make(map[remoteKey][]Delivery)
	var remoteOrder []remoteKey
	collect := func(from plan.InstanceID, buf *state.Buffer) {
		for _, target := range buf.Targets() {
			r := e.routings[target.Op]
			input := q.InputIndex(inst.Op, target.Op)
			for _, t := range buf.Tuples(target) {
				to := target
				if r != nil {
					to = r.Lookup(t.Key)
				}
				d := Delivery{From: from, Input: input, T: t}
				if tn := e.nodes[to]; tn != nil {
					replayed++
					replayTo[tn] = append(replayTo[tn], d)
				} else if e.remote != nil {
					replayed++
					k := remoteKey{to: to, from: from}
					if _, ok := remoteTo[k]; !ok {
						remoteOrder = append(remoteOrder, k)
					}
					remoteTo[k] = append(remoteTo[k], d)
				}
			}
		}
	}
	collect(inst, cp.Buffer)
	for _, owner := range state.LegacyOwners(cp.Legacy) {
		collect(owner, cp.Legacy[owner])
	}
	for tn, ds := range replayTo {
		select {
		case tn.in <- ds:
		case <-tn.stopped:
		}
	}
	for _, k := range remoteOrder {
		e.remote.Deliver(k.to, remoteTo[k])
	}
	if e.started.Load() {
		e.startNode(nn)
	}
	e.mu.Unlock()
	return replayed + len(replay), nil
}

// Retire stops a locally hosted instance and removes it from the
// topology — the coordinator's counterpart of replace() stopping a
// scale-out victim after the routing switch. The instance's retained
// output buffer goes with it; its backed-up checkpoint is the
// authoritative copy.
func (e *Engine) Retire(inst plan.InstanceID) error {
	e.mu.Lock()
	n := e.nodes[inst]
	if n == nil {
		e.mu.Unlock()
		return fmt.Errorf("engine: %s is not hosted here", inst)
	}
	n.failed.Store(true)
	delete(e.nodes, inst)
	e.rebuildTopology()
	e.mu.Unlock()
	n.stop()
	return nil
}

// RetireFinal stops a hosted instance FIRST — queued input is dropped
// and stays retained upstream — then captures its final checkpoint once
// the goroutine has exited and removes the node from the topology. The
// capture reflects everything the instance ever processed and emitted,
// so a transition planned from it (distributed scale out or merge) has
// no post-checkpoint window to reconstruct. The caller ships the
// returned checkpoint to the authoritative store.
func (e *Engine) RetireFinal(inst plan.InstanceID) (*state.Checkpoint, error) {
	e.mu.Lock()
	n := e.nodes[inst]
	if n == nil || n.failed.Load() {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: %s is not hosted here", inst)
	}
	n.failed.Store(true)
	running := e.started.Load()
	e.mu.Unlock()
	n.stop()
	if running {
		<-n.done
	}
	n.mu.Lock()
	n.needFull = true // a delta cannot seed a transition
	n.mu.Unlock()
	cap := n.captureCheckpoint()
	e.mu.Lock()
	delete(e.nodes, inst)
	e.rebuildTopology()
	e.mu.Unlock()
	if cap == nil || cap.full == nil {
		return nil, fmt.Errorf("engine: %s retired but its final state failed to encode", inst)
	}
	return cap.full, nil
}

// TotalProcessed returns the total number of tuples processed by all
// hosted nodes — the settle signal distributed quiesce polls across
// workers.
func (e *Engine) TotalProcessed() uint64 { return e.totalProcessed() }

// Local returns the instances hosted by this engine, in deterministic
// order.
func (e *Engine) Local() []plan.InstanceID {
	set := e.set.Load()
	if set == nil {
		return nil
	}
	out := make([]plan.InstanceID, 0, len(set.nodes))
	for _, n := range set.nodes {
		if !n.failed.Load() {
			out = append(out, n.inst)
		}
	}
	return out
}
