package engine

import (
	"fmt"
	"sync/atomic"

	"seep/internal/state"
)

// Credit-based flow control on the local node-link layer. Every node
// owns a credit ledger sized to its input bound: one credit per batch
// slot, handed to senders before a channel send and returned when the
// batch has been fully processed (not merely dequeued), so the ledger
// bounds queued AND in-flight work. The acquire sits on the post-unlock
// send path of emitChunk — a stalled sender holds no locks, which is
// what lets checkpoint barriers, reroutes and buffer trims proceed
// around it. Replay traffic (replacement replays, replay queues, adopted
// buffers) bypasses the ledger — recovery must be able to cross a
// credit-starved edge, and its volume is bounded by the retained
// buffers — and control messages (barriers, ticks) ride the separate
// ctrl queue, consuming no credits. Releases are capped non-blocking
// sends, so bypassed batches simply top the ledger up. Deadlock freedom
// follows from the query being a DAG whose sinks never emit: the
// terminal node always drains, and every stall select also watches the
// receiver's stop and engine shutdown.

// EdgeStats describes backpressure on one node's input edge.
type EdgeStats struct {
	// Queued is the current input queue depth in batches.
	Queued int
	// Peak is the deepest queue observed since start.
	Peak int
	// CreditStalls counts times a sender had to wait for this node's
	// credits.
	CreditStalls uint64
}

// BackpressureStats is the engine-wide backpressure and spill snapshot.
type BackpressureStats struct {
	// CreditStalls counts every sender wait on any edge.
	CreditStalls uint64
	// QueueDepth is the current total queued batches across nodes.
	QueueDepth int
	// PeakQueueDepth is the deepest single input queue observed.
	PeakQueueDepth int
	// Edges maps instance names to their per-edge gauges.
	Edges map[string]EdgeStats
	// Spill aggregates the managed stores' spill counters.
	Spill state.SpillStats
}

// Add folds other into s (cross-worker aggregation).
func (s *BackpressureStats) Add(o BackpressureStats) {
	s.CreditStalls += o.CreditStalls
	s.QueueDepth += o.QueueDepth
	if o.PeakQueueDepth > s.PeakQueueDepth {
		s.PeakQueueDepth = o.PeakQueueDepth
	}
	for k, v := range o.Edges {
		if s.Edges == nil {
			s.Edges = make(map[string]EdgeStats)
		}
		s.Edges[k] = v
	}
	s.Spill.Add(o.Spill)
}

// creditLedger is an atomic counting semaphore saturating at cap. The
// contended case rides a 1-buffered wake channel, but the fast paths —
// acquire with credits available, release with nobody waiting — are a
// CAS each, cheap enough to pay per batch even at batch size 1.
type creditLedger struct {
	avail   atomic.Int64
	waiters atomic.Int64
	cap     int64
	wake    chan struct{}
}

func (l *creditLedger) init(slots int) {
	l.cap = int64(slots)
	l.avail.Store(int64(slots))
	l.wake = make(chan struct{}, 1)
}

func (l *creditLedger) tryAcquire() bool {
	for {
		a := l.avail.Load()
		if a <= 0 {
			return false
		}
		if l.avail.CompareAndSwap(a, a-1) {
			return true
		}
	}
}

// signal wakes one stalled sender when a credit is (still) available.
// The buffered channel makes the wakeup level-triggered: a signal sent
// before the waiter blocks is not lost. Spurious signals are fine —
// woken senders re-run tryAcquire — and a consumed credit needs no
// signal: whoever took it will release (and signal) later. Lost
// wakeups cannot happen because waiters increment `waiters` BEFORE
// re-checking the ledger: a release that missed the waiter count must
// have incremented avail before the waiter's failed re-check, which
// the re-check would then have seen.
func (l *creditLedger) signal() {
	if l.avail.Load() > 0 && l.waiters.Load() > 0 {
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
}

// release returns one credit, saturating at the ledger capacity
// (replayed batches bypass acquire, so their release is a no-op at a
// full ledger).
func (l *creditLedger) release() {
	for {
		a := l.avail.Load()
		if a >= l.cap {
			return
		}
		if l.avail.CompareAndSwap(a, a+1) {
			l.signal()
			return
		}
	}
}

// acquireCredit takes one credit toward n, waiting when the ledger is
// empty. It returns false when the receiver stopped or the engine shut
// down while waiting — the caller drops the batch exactly like a send
// to a stopped receiver (output-buffer retention covers replay).
//
// seep:blocking
func (n *node) acquireCredit() bool {
	l := &n.credits
	if l.tryAcquire() {
		return true
	}
	n.creditStalls.Add(1)
	n.e.creditStalls.Add(1)
	l.waiters.Add(1)
	defer l.waiters.Add(-1)
	for {
		if l.tryAcquire() {
			// Cascade: more credits may have landed than wake signals
			// fit in the buffer; pass the baton to the next waiter.
			l.signal()
			return true
		}
		select {
		case <-l.wake:
		case <-n.stopped:
			return false
		case <-n.e.stopAll:
			return false
		}
	}
}

func (n *node) releaseCredit() {
	n.credits.release()
}

// notePeakDepth samples the input queue depth at batch handling time —
// single writer (the node goroutine), atomic for concurrent snapshot
// readers.
func (n *node) notePeakDepth() {
	if d := int64(len(n.in)); d > n.peakDepth.Load() {
		n.peakDepth.Store(d)
	}
}

// BackpressureSnapshot reports per-edge queue depth and credit gauges
// plus aggregated spill counters. Off the hot path.
func (e *Engine) BackpressureSnapshot() BackpressureStats {
	out := BackpressureStats{CreditStalls: e.creditStalls.Value()}
	set := e.set.Load()
	if set == nil {
		return out
	}
	out.Edges = make(map[string]EdgeStats, len(set.nodes))
	for _, n := range set.nodes {
		es := EdgeStats{
			Queued:       len(n.in),
			Peak:         int(n.peakDepth.Load()),
			CreditStalls: n.creditStalls.Value(),
		}
		out.QueueDepth += es.Queued
		if es.Peak > out.PeakQueueDepth {
			out.PeakQueueDepth = es.Peak
		}
		out.Edges[fmt.Sprintf("%s/%d", n.inst.Op, n.inst.Part)] = es
		if n.store != nil {
			out.Spill.Add(n.store.SpillStats())
		}
	}
	return out
}
