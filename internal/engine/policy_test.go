package engine

import (
	"testing"
	"time"

	"seep/internal/control"
	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/stream"
	"seep/internal/wordcount"
)

// slowCounter wraps a WordCounter with a fixed wall-clock cost per tuple
// so a live node has a real capacity limit.
type slowCounter struct {
	*operator.WordCounter
	delay time.Duration
}

func (s *slowCounter) OnTuple(ctx operator.Context, t stream.Tuple, emit operator.Emitter) {
	time.Sleep(s.delay)
	s.WordCounter.OnTuple(ctx, t, emit)
}

func TestEnginePolicyScalesOutUnderBackpressure(t *testing.T) {
	opts := wordcount.Options{WindowMillis: 0}
	q := wordcount.Query(opts)
	factories := map[plan.OpID]operator.Factory{
		"split": func() operator.Operator { return operator.WordSplitter() },
		"count": func() operator.Operator {
			return &slowCounter{WordCounter: operator.NewWordCounter(0), delay: 2 * time.Millisecond}
		},
	}
	e, err := New(Config{
		CheckpointInterval: 100 * time.Millisecond,
		ChannelBuffer:      256, // small channel so backpressure is visible
	}, q, factories)
	if err != nil {
		t.Fatal(err)
	}
	// ~500 tuples/s capacity per counter; feed 1200/s.
	if err := e.AddSource(inst("src", 1), 1200, wordGen(40)); err != nil {
		t.Fatal(err)
	}
	e.EnablePolicy(control.Policy{
		Threshold:          0.5,
		ConsecutiveReports: 2,
		ReportEveryMillis:  150,
	}, nil)
	e.Start()
	defer e.Stop()

	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		if e.Manager().Parallelism("count") >= 2 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got := e.Manager().Parallelism("count"); got < 2 {
		t.Fatalf("parallelism = %d; policy did not scale out under backpressure", got)
	}
	// The query still produces results afterwards.
	before := e.SinkCount.Value()
	time.Sleep(300 * time.Millisecond)
	if e.SinkCount.Value() <= before {
		t.Error("no progress after policy-driven scale out")
	}
}

func TestQueueFillSampler(t *testing.T) {
	e := wordEngine(t, Config{})
	s := e.QueueFillSampler()
	if u, ok := s(inst("count", 1)); !ok || u != 0 {
		t.Errorf("idle sampler = %v %v", u, ok)
	}
	if _, ok := s(inst("count", 99)); ok {
		t.Error("sampler reported an unknown instance")
	}
}
