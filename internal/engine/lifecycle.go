package engine

import (
	"fmt"
	"time"

	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

// Checkpoint barrier protocol. A checkpoint is captured ON the node
// goroutine: the checkpoint loop sends a barrier control message, the
// node processes it between input batches, clones its bookkeeping (ack
// watermarks, timestamp vector, output buffer, output clock) and
// extracts operator state (full snapshot or incremental delta), and
// replies with the capture. Because a batch advances ack watermarks and
// applies operator mutations on the same goroutine, a barrier can never
// observe a tuple as acknowledged without its state mutation: the
// ack-before-state window the pre-barrier engine had (checkpoints
// cloned bookkeeping from another goroutine, racing the gap inside
// handle()) is structurally gone, matching the simulator, whose
// snapshots were always within one event. Shipping to the backup host
// and trimming acknowledged tuples from upstream buffers stay on the
// checkpoint loop, so the node stalls only for the capture itself.

// capture is the node-side result of a checkpoint barrier: exactly one
// of full/delta is set; both nil means the state failed to encode and
// the checkpoint round is skipped (the previous backup is kept rather
// than shipping partial state).
type capture struct {
	full  *state.Checkpoint
	delta *state.DeltaCheckpoint
}

// checkpointAll runs backup-state for every non-source, non-sink node,
// reusing the node-set snapshot rather than rebuilding a slice under
// the engine lock every interval.
func (e *Engine) checkpointAll() {
	set := e.set.Load()
	if set == nil {
		return
	}
	for _, n := range set.stateful {
		if n.failed.Load() {
			continue
		}
		e.checkpointNode(n)
	}
}

// checkpointNode takes a consistent checkpoint of one node via a
// barrier, stores it at its backup host and trims acknowledged tuples
// from upstream buffers (Algorithm 1). Under an active DeltaPolicy,
// managed-state nodes ship an incremental checkpoint — the keys dirtied
// since the last one — whenever a base exists, the per-base delta
// budget is not exhausted and the delta is small enough; any failure to
// apply falls back to a full checkpoint, so a delta is never
// load-bearing.
func (e *Engine) checkpointNode(n *node) {
	if e.cfg.Backup != nil {
		// Distributed mode: the capture ships to the coordinator's
		// authoritative store; acknowledgement trims come back over the
		// wire (TrimUpstream), and the coordinator picks the backup
		// host, so the engine's (possibly stale) local graph is never
		// consulted.
		cap := e.requestCapture(n)
		if cap == nil {
			return
		}
		if cap.delta != nil {
			if err := e.cfg.Backup.ShipDelta(cap.delta); err == nil {
				return
			}
			// The sink could not take the delta (coordinator unreachable,
			// orphaned worker): re-capture as a full checkpoint, mirroring
			// the in-process fallback, so a delta is never load-bearing.
			n.mu.Lock()
			n.needFull = true
			n.mu.Unlock()
			cap = e.requestCapture(n)
			if cap == nil {
				return
			}
		}
		if cap.full == nil {
			return
		}
		if err := e.cfg.Backup.ShipFull(cap.full); err != nil {
			return
		}
		n.mu.Lock()
		n.needFull = false
		n.deltasSince = 0
		n.mu.Unlock()
		return
	}
	host, err := e.mgr.BackupTarget(n.inst)
	if err != nil {
		return
	}
	cap := e.requestCapture(n)
	if cap == nil {
		return
	}
	if cap.delta != nil {
		if err := e.mgr.Backups().ApplyDelta(host, cap.delta); err == nil {
			e.trimAcked(n.inst, cap.delta.Acks)
			return
		}
		// The backup host could not fold the delta (missing base, moved
		// host): force and ship a full checkpoint now, so callers that
		// need a fresh usable backup (ScaleOut) are not left behind a
		// stale one.
		n.mu.Lock()
		n.needFull = true
		n.mu.Unlock()
		cap = e.requestCapture(n)
		if cap == nil {
			return
		}
	}
	if cap.full == nil {
		return
	}
	if err := e.mgr.Backups().Store(host, cap.full); err != nil {
		return
	}
	n.mu.Lock()
	n.needFull = false
	n.deltasSince = 0
	n.mu.Unlock()
	e.trimAcked(n.inst, cap.full.Acks)
}

// requestCapture obtains a checkpoint capture from the node. On a
// running engine it inserts a barrier into the node's control queue and
// waits for the node goroutine to process it between batches; before
// Start (single-threaded setup) it captures inline.
func (e *Engine) requestCapture(n *node) *capture {
	if !e.started.Load() {
		return n.captureCheckpoint()
	}
	reply := make(chan *capture, 1)
	select {
	case n.ctrl <- ctrlMsg{kind: ctrlBarrier, reply: reply}:
	case <-n.done:
		return nil
	case <-e.stopAll:
		return nil
	}
	select {
	case c := <-reply:
		return c
	case <-n.done:
		// Node stopped before processing the barrier.
		return nil
	}
}

// captureCheckpoint runs on the node goroutine (or inline before
// Start). It clones the node bookkeeping under the narrow lock — the
// lock is needed only against cross-goroutine trims and replacement,
// never against processing, which is this same goroutine — and then
// extracts operator state with no node lock held.
func (n *node) captureCheckpoint() *capture {
	p := n.e.cfg.Delta
	n.mu.Lock()
	tryDelta := n.store != nil && p.Enabled() && !n.needFull && n.deltasSince < p.FullEvery-1
	base := n.ckptSeq
	n.ckptSeq++
	seq := n.ckptSeq
	tsVec := n.tsVec.Clone()
	buf := n.outBuf.Clone()
	clock := n.outClock.Last()
	acks := state.CloneAcks(n.acks)
	// Drop fully acknowledged legacy buffers before cloning: once
	// downstream checkpoints have trimmed an inherited buffer to empty
	// it can never be needed again.
	for owner, lb := range n.legacy {
		if lb.Len() == 0 {
			delete(n.legacy, owner)
		}
	}
	legacy := state.CloneLegacy(n.legacy)
	n.mu.Unlock()

	if tryDelta {
		d, err := n.store.TakeDelta(tsVec, base, seq)
		if err == nil && p.DeltaAllowed(d.Size(), n.store.LastFullSize()) {
			n.mu.Lock()
			n.deltasSince++
			n.mu.Unlock()
			return &capture{delta: &state.DeltaCheckpoint{
				Instance: n.inst,
				Delta:    d,
				Buffer:   buf,
				OutClock: clock,
				Acks:     acks,
			}}
		}
		// Delta unavailable or too large relative to the base: fall
		// through to a full checkpoint with the same capture. The dirty
		// set is consumed, but the full snapshot supersedes everything
		// the delta held.
	}

	proc := state.NewProcessing(len(tsVec))
	proc.TS = tsVec
	if n.op != nil {
		kv, err := operator.SnapshotState(n.op)
		if err != nil {
			return nil
		}
		proc.KV = kv
	}
	return &capture{full: &state.Checkpoint{
		Instance:   n.inst,
		Seq:        seq,
		Processing: proc,
		Buffer:     buf,
		OutClock:   clock,
		Acks:       acks,
		Legacy:     legacy,
	}}
}

// trimAcked trims acknowledged tuples from upstream buffers after a
// successful backup (Algorithm 1 line 4). Acknowledgements addressed to
// a retired merge victim trim the legacy buffer its merge product
// carries for it.
func (e *Engine) trimAcked(inst plan.InstanceID, acks map[plan.InstanceID]int64) {
	set := e.set.Load()
	if set == nil {
		return
	}
	for up, ts := range acks {
		if un := set.byInst[up]; un != nil {
			un.mu.Lock()
			un.outBuf.TrimInstance(inst, ts)
			un.mu.Unlock()
			continue
		}
		if hn := set.legacyHosts[up]; hn != nil {
			hn.mu.Lock()
			if lb := hn.legacy[up]; lb != nil {
				lb.TrimInstance(inst, ts)
			}
			hn.mu.Unlock()
		}
	}
}

// restore installs a checkpoint on a fresh node (restore-state). The
// node must not be running: restore replaces the output buffer object,
// invalidating any route-table handles into it, so it always precedes
// the topology rebuild that re-resolves them.
func (n *node) restore(cp *state.Checkpoint) error {
	if n.op != nil {
		if err := operator.RestoreState(n.op, cp.Processing.KV); err != nil {
			return fmt.Errorf("engine: restore %s: %w", n.inst, err)
		}
	}
	n.mu.Lock()
	n.tsVec = cp.Processing.TS.Clone()
	for len(n.tsVec) < len(n.e.mgr.Query().Upstream(n.inst.Op)) {
		n.tsVec = append(n.tsVec, 0)
	}
	n.outBuf = cp.Buffer.Clone()
	n.legacy = state.CloneLegacy(cp.Legacy)
	n.outClock.Reset(cp.OutClock)
	n.acks = state.CloneAcks(cp.Acks)
	if n.acks == nil {
		n.acks = make(map[plan.InstanceID]int64)
	}
	n.ckptSeq = cp.Seq
	n.deltasSince = 0
	n.needFull = true
	n.mu.Unlock()
	return nil
}

// Fail crash-stops the VM hosting an instance: the node stops processing
// and backups it hosted are lost. Recovery must be triggered by Recover
// (the engine has no background failure detector; detection delay is the
// caller's to model or measure).
func (e *Engine) Fail(inst plan.InstanceID) error {
	e.mu.Lock()
	n := e.nodes[inst]
	if n == nil || n.failed.Load() {
		e.mu.Unlock()
		return fmt.Errorf("engine: %s is not a live instance", inst)
	}
	if n.spec.Role == plan.RoleSource || n.spec.Role == plan.RoleSink {
		e.mu.Unlock()
		return fmt.Errorf("engine: sources and sinks are assumed reliable (§2.2)")
	}
	n.failed.Store(true)
	e.failedAt[inst] = e.NowMillis()
	e.mu.Unlock()
	n.stop()
	e.mgr.HandleHostFailure(inst)
	return nil
}

// Recover replaces a failed instance via the integrated scale-out
// algorithm with parallelism pi (π=1 serial recovery, π≥2 parallel
// recovery).
func (e *Engine) Recover(inst plan.InstanceID, pi int) error {
	return e.replace(inst, pi, true)
}

// ReplaceRecord documents one completed recovery or scale out — the
// live counterpart of the simulator's RecoveryRecord. Times are
// wall-clock milliseconds since Start.
type ReplaceRecord struct {
	Victim         plan.InstanceID
	Pi             int
	Failure        bool
	StartedAt      int64
	CompletedAt    int64
	ReplayedTuples int
	// Merge reports a scale-in transition: Victim is the first of the
	// merged siblings and Pi is 1 (several instances collapsed to one).
	Merge bool
}

// Recoveries returns the completed recovery/scale-out records, oldest
// first — including scale-outs triggered by the scaling policy.
func (e *Engine) Recoveries() []ReplaceRecord {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]ReplaceRecord, len(e.records))
	copy(out, e.records)
	return out
}

// ScaleOut splits a live instance into pi partitioned instances
// (Algorithm 3). A fresh checkpoint is taken first so the replayed
// window is small.
func (e *Engine) ScaleOut(victim plan.InstanceID, pi int) error {
	e.mu.RLock()
	n := e.nodes[victim]
	e.mu.RUnlock()
	if n == nil || n.failed.Load() {
		return fmt.Errorf("engine: %s is not live", victim)
	}
	e.checkpointNode(n)
	return e.replace(victim, pi, false)
}

// replace executes Algorithm 3: plan (partition the backed-up checkpoint,
// update the execution graph and routing), deploy replacement nodes,
// restore state, switch routing, repartition upstream buffers, and
// replay. The routing switch (an atomic route-table rebuild) and buffer
// repartitioning happen under the engine write lock — the moral
// equivalent of stopping the upstream operators (lines 9-14) — while
// tuple replay rides the normal channels. Ordering matters: the new
// route tables are installed BEFORE upstream buffers are repartitioned,
// and emitters load the table inside their own node lock, so every
// emitted tuple is either already buffered when its target's buffer
// entry is repartitioned (and thus replayed under the new routing) or
// routed with the new table.
func (e *Engine) replace(victim plan.InstanceID, pi int, failure bool) error {
	q := e.mgr.Query()
	startedAt := e.NowMillis()
	// Failure recovery may fall back to an empty checkpoint when the
	// victim failed before its first backup (PlanRecovery); scale out of
	// a live instance never does.
	planFn := e.mgr.PlanReplace
	if failure {
		planFn = e.mgr.PlanRecovery
	}
	rp, err := planFn(victim, pi)
	if err != nil {
		return err
	}
	spec := q.Op(victim.Op)
	replayed := 0

	// Build replacement nodes and restore their state before exposing
	// them to traffic.
	newNodes := make([]*node, pi)
	for i, inst := range rp.NewInstances {
		nn, err := e.newNode(inst, spec)
		if err != nil {
			return err
		}
		if err := nn.restore(rp.Checkpoints[i]); err != nil {
			return err
		}
		newNodes[i] = nn
	}

	e.mu.Lock()
	select {
	case <-e.stopAll:
		// The engine is stopping: starting replacement goroutines now
		// would leak past Stop's node snapshot.
		e.mu.Unlock()
		return fmt.Errorf("engine: stopping; %s not replaced", victim)
	default:
	}
	old := e.nodes[victim]
	if old != nil {
		old.failed.Store(true)
		delete(e.nodes, victim)
	}
	for _, nn := range newNodes {
		e.nodes[nn.inst] = nn
	}
	e.routings[victim.Op] = rp.Routing
	// Install the new epoch's route tables and node set before touching
	// any upstream buffer (see the ordering argument above).
	e.rebuildTopology()

	// Downstream ack inheritance for deterministic π=1 replay (see
	// DESIGN.md on duplicate detection across partitioned restarts).
	if pi == 1 {
		for _, dn := range e.nodes {
			dn.mu.Lock()
			if ts, ok := dn.acks[victim]; ok {
				dn.acks[rp.NewInstances[0]] = ts
				delete(dn.acks, victim)
			}
			dn.mu.Unlock()
		}
	}

	// The victim's own buffered output replays to downstream operators
	// (line 7). Those nodes are already running, so the replay rides
	// their input channels — enqueued here, before the new nodes start,
	// so it precedes anything the new instances emit themselves
	// (channels are FIFO). replayQueue is only for the not-yet-started
	// replacement nodes, whose goroutines do not exist yet. Legacy
	// buffers the victim carried (it was a merge product) replay under
	// their ORIGINAL owners' identities, against the duplicate-detection
	// watermarks downstream still holds for those senders.
	replayTo := make(map[*node][]delivery)
	for i, nn := range newNodes {
		cp := rp.Checkpoints[i]
		replayed += e.collectDownstreamReplay(nn.inst, victim.Op, cp.Buffer, replayTo)
		for _, owner := range state.LegacyOwners(cp.Legacy) {
			replayed += e.collectDownstreamReplay(owner, victim.Op, cp.Legacy[owner], replayTo)
		}
	}
	for tn, ds := range replayTo {
		select {
		case tn.in <- ds:
		case <-tn.stopped:
		}
	}
	// Upstream buffers: repartition under the new routing and queue the
	// retained tuples for replay to the new instances (lines 9-14).
	// Upstream legacy buffers (retired merge victims of the upstream
	// operator) repartition and replay the same way, keeping the retired
	// sender's identity so the replacements' restored watermarks match.
	for _, upOp := range q.Upstream(victim.Op) {
		input := q.InputIndex(upOp, victim.Op)
		for _, upInst := range e.mgr.Instances(upOp) {
			un := e.nodes[upInst]
			if un == nil {
				continue
			}
			un.mu.Lock()
			un.outBuf.Repartition(victim.Op, rp.Routing)
			for _, nn := range newNodes {
				for _, t := range un.outBuf.Tuples(nn.inst) {
					replayed++
					nn.replayQueue = append(nn.replayQueue, delivery{
						From:  upInst,
						Input: input,
						T:     t,
					})
				}
			}
			for _, owner := range state.LegacyOwners(un.legacy) {
				if owner.Op != upOp {
					continue
				}
				lb := un.legacy[owner]
				lb.Repartition(victim.Op, rp.Routing)
				for _, nn := range newNodes {
					for _, t := range lb.Tuples(nn.inst) {
						replayed++
						nn.replayQueue = append(nn.replayQueue, delivery{
							From:  owner,
							Input: input,
							T:     t,
						})
					}
				}
			}
			un.mu.Unlock()
		}
	}

	// Start the replacements: each consumes its replay queue first.
	for _, nn := range newNodes {
		e.startNode(nn)
	}
	// Record the transition (the live counterpart of the simulator's
	// RecoveryRecord): for failure recovery the clock starts at Fail.
	if t, ok := e.failedAt[victim]; ok {
		startedAt = t
		delete(e.failedAt, victim)
	}
	e.records = append(e.records, ReplaceRecord{
		Victim:         victim,
		Pi:             pi,
		Failure:        failure,
		StartedAt:      startedAt,
		CompletedAt:    e.NowMillis(),
		ReplayedTuples: replayed,
	})
	e.mu.Unlock()

	// Stop the victim's goroutine after the switch (line 8); on failure
	// it is already down.
	if old != nil && !failure {
		old.stop()
	}
	return nil
}

// collectDownstreamReplay routes one buffer's retained tuples to the
// downstream nodes under the CURRENT routing state and appends them to
// replayTo, attributed to `from` (the buffer's original emitter — a
// replacement instance for its own checkpoint buffer, a retired merge
// victim for a legacy buffer). Returns the number of tuples collected.
//
// seep:locks e.mu
func (e *Engine) collectDownstreamReplay(from plan.InstanceID, srcOp plan.OpID, buf *state.Buffer, replayTo map[*node][]delivery) int {
	if buf == nil {
		return 0
	}
	q := e.mgr.Query()
	n := 0
	for _, target := range buf.Targets() {
		r := e.routings[target.Op]
		input := q.InputIndex(srcOp, target.Op)
		for _, t := range buf.Tuples(target) {
			to := target
			if r != nil {
				to = r.Lookup(t.Key)
			}
			if tn := e.nodes[to]; tn != nil {
				n++
				replayTo[tn] = append(replayTo[tn], delivery{From: from, Input: input, T: t})
			}
		}
	}
	return n
}

// sourceDriver injects generated tuples following a rate profile.
type sourceDriver struct {
	inst plan.InstanceID
	rate func(nowMillis int64) float64
	gen  func(i uint64) (stream.Key, any)
}

// AddSource attaches a fixed-rate generator to a source instance. Rate
// is in tuples/second.
func (e *Engine) AddSource(inst plan.InstanceID, rate float64, gen func(i uint64) (stream.Key, any)) error {
	return e.AddSourceFunc(inst, func(int64) float64 { return rate }, gen)
}

// AddSourceFunc attaches a generator whose tuples/second rate may vary
// with wall-clock time since Start. Sources added before Start begin
// with it; sources added later start immediately.
func (e *Engine) AddSourceFunc(inst plan.InstanceID, rate func(nowMillis int64) float64, gen func(i uint64) (stream.Key, any)) error {
	e.mu.Lock()
	n := e.nodes[inst]
	if n == nil || n.spec.Role != plan.RoleSource {
		e.mu.Unlock()
		return fmt.Errorf("engine: %s is not a live source", inst)
	}
	s := &sourceDriver{inst: inst, rate: rate, gen: gen}
	e.sources = append(e.sources, s)
	running := e.started.Load()
	e.mu.Unlock()
	if running {
		e.startSource(s)
	}
	return nil
}

// startSource runs the driver loop: each tick the accrued tuples are
// staged locally and emitted as micro-batches. BatchLinger bounds how
// long a partial batch waits for the next tick.
func (e *Engine) startSource(s *sourceDriver) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		// The tick IS the linger: accrued tuples flush every interval,
		// so a partial batch waits at most one linger. The carry-based
		// rate conversion is exact at any tick length; long lingers
		// trade latency (and source burstiness) for batch fullness.
		tick := e.cfg.BatchLinger
		if tick <= 0 {
			tick = 10 * time.Millisecond
		}
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		var emitted uint64
		carry := 0.0
		var pend []staged
		// Adaptive linger: when the previous flush hit credit stalls the
		// source holds its accrued tuples for extra ticks (up to
		// maxLingerStretch), emitting fewer, fuller batches instead of
		// piling onto a starved edge; the stretch decays one tick per
		// stall-free flush. holdCap bounds the held backlog regardless.
		const maxLingerStretch = 8
		holdCap := maxLingerStretch * e.cfg.BatchSize
		var stretch, skip int
		for {
			select {
			case <-e.stopAll:
				return
			case <-ticker.C:
				set := e.set.Load()
				if set == nil {
					continue
				}
				n := set.byInst[s.inst]
				if n == nil {
					return
				}
				carry += s.rate(e.NowMillis()) * tick.Seconds()
				k := int(carry)
				carry -= float64(k)
				born := e.NowMillis()
				for i := 0; i < k; i++ {
					key, payload := s.gen(emitted)
					emitted++
					pend = append(pend, staged{key: key, payload: payload, born: born})
				}
				if len(pend) == 0 {
					continue
				}
				if skip > 0 && len(pend) < holdCap {
					skip--
					continue
				}
				before := e.creditStalls.Value()
				n.emitAll(pend)
				clear(pend)
				pend = pend[:0]
				if e.creditStalls.Value() > before {
					if stretch < maxLingerStretch {
						stretch++
					}
				} else if stretch > 0 {
					stretch--
				}
				skip = stretch
			}
		}
	}()
}

// InjectBatch synchronously emits count tuples from a source instance —
// for tests and examples that need exact tuple counts rather than rates.
func (e *Engine) InjectBatch(inst plan.InstanceID, count int, gen func(i uint64) (stream.Key, any)) error {
	e.mu.RLock()
	n := e.nodes[inst]
	e.mu.RUnlock()
	if n == nil || n.spec.Role != plan.RoleSource {
		return fmt.Errorf("engine: %s is not a live source", inst)
	}
	born := e.NowMillis()
	bs := e.cfg.BatchSize
	if bs > count {
		bs = count
	}
	// Stage in batch-sized chunks rather than materialising all count
	// tuples at once: generation interleaves with processing and memory
	// stays bounded by the batch size.
	pend := make([]staged, 0, bs)
	for i := 0; i < count; i++ {
		key, payload := gen(uint64(i))
		pend = append(pend, staged{key: key, payload: payload, born: born})
		if len(pend) == cap(pend) {
			n.emitAll(pend)
			pend = pend[:0]
		}
	}
	n.emitAll(pend)
	return nil
}

// NodeProcessed returns how many tuples an instance has processed (0 if
// unknown).
func (e *Engine) NodeProcessed(inst plan.InstanceID) uint64 {
	if set := e.set.Load(); set != nil {
		if n := set.byInst[inst]; n != nil {
			return n.processed.Value()
		}
	}
	return 0
}

// OperatorOf returns the operator instance object hosted by inst, so
// tests and examples can inspect state (nil if unknown).
func (e *Engine) OperatorOf(inst plan.InstanceID) any {
	if set := e.set.Load(); set != nil {
		if n := set.byInst[inst]; n != nil {
			return n.op
		}
	}
	return nil
}

// Checkpoint forces an immediate checkpoint of one instance (tests and
// examples; production uses the periodic loop). On a running engine the
// checkpoint is captured via a barrier on the instance's goroutine.
func (e *Engine) Checkpoint(inst plan.InstanceID) error {
	e.mu.RLock()
	n := e.nodes[inst]
	e.mu.RUnlock()
	if n == nil || n.failed.Load() {
		return fmt.Errorf("engine: %s is not live", inst)
	}
	e.checkpointNode(n)
	return nil
}

// CheckpointFull forces an immediate full (non-incremental) checkpoint
// of one instance, regardless of the delta policy. The coordinator's
// scale-out barriers use it: a transition waits for a full checkpoint
// ship to plan against, so a barrier answered with a delta would stall
// the stage.
func (e *Engine) CheckpointFull(inst plan.InstanceID) error {
	e.mu.RLock()
	n := e.nodes[inst]
	e.mu.RUnlock()
	if n == nil || n.failed.Load() {
		return fmt.Errorf("engine: %s is not live", inst)
	}
	n.mu.Lock()
	n.needFull = true
	n.mu.Unlock()
	e.checkpointNode(n)
	return nil
}

// Quiesce waits until no node has processed a tuple for the given
// settle duration, up to the timeout. Returns true when the engine
// settled. Used by tests to reach a stable state before assertions.
func (e *Engine) Quiesce(settle, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	last := e.totalProcessed()
	lastChange := time.Now()
	for time.Now().Before(deadline) {
		time.Sleep(settle / 4)
		cur := e.totalProcessed()
		if cur != last {
			last = cur
			lastChange = time.Now()
			continue
		}
		if time.Since(lastChange) >= settle {
			return true
		}
	}
	return false
}

func (e *Engine) totalProcessed() uint64 {
	set := e.set.Load()
	if set == nil {
		return 0
	}
	var n uint64
	for _, nd := range set.nodes {
		n += nd.processed.Value()
	}
	return n
}
