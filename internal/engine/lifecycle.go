package engine

import (
	"fmt"
	"time"

	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
)

// checkpointAll runs backup-state for every non-source, non-sink node.
func (e *Engine) checkpointAll() {
	e.mu.RLock()
	var ns []*node
	for _, n := range e.nodes {
		if n.failed.Load() || n.spec.Role == plan.RoleSource || n.spec.Role == plan.RoleSink {
			continue
		}
		ns = append(ns, n)
	}
	e.mu.RUnlock()
	for _, n := range ns {
		e.checkpointNode(n)
	}
}

// checkpointNode takes a consistent checkpoint of one node, stores it at
// its backup host and trims acknowledged tuples from upstream buffers
// (Algorithm 1). Under an active DeltaPolicy, managed-state nodes ship
// an incremental checkpoint — the keys dirtied since the last one —
// whenever a base exists, the per-base delta budget is not exhausted and
// the delta is small enough; any failure to apply falls back to a full
// checkpoint, so a delta is never load-bearing.
//
// Known limitation (pre-dating the managed store, which inherits it):
// handle() advances the ack watermark under n.mu before the operator's
// state mutation lands in the store, so a checkpoint interleaving that
// window can record a tuple as acknowledged without its state — the
// tuple is then neither replayed nor reflected after a recovery from
// that exact checkpoint. The simulator is immune (snapshots are taken
// within one event); closing it on the live engine needs checkpoint
// capture on the node goroutine (a checkpoint barrier), tracked as an
// open item.
func (e *Engine) checkpointNode(n *node) {
	host, err := e.mgr.BackupTarget(n.inst)
	if err != nil {
		return
	}
	if dc := n.maybeDelta(e.cfg.Delta); dc != nil {
		if err := e.mgr.Backups().ApplyDelta(host, dc); err == nil {
			e.trimAcked(n.inst, dc.Acks)
			return
		}
		n.mu.Lock()
		n.needFull = true
		n.mu.Unlock()
	}
	cp := n.snapshot()
	if cp == nil {
		// State encode failure: keep the previous backup rather than
		// shipping partial state.
		return
	}
	if err := e.mgr.Backups().Store(host, cp); err != nil {
		return
	}
	n.mu.Lock()
	n.needFull = false
	n.deltasSince = 0
	n.mu.Unlock()
	e.trimAcked(n.inst, cp.Acks)
}

// trimAcked trims acknowledged tuples from upstream buffers after a
// successful backup (Algorithm 1 line 4).
func (e *Engine) trimAcked(inst plan.InstanceID, acks map[plan.InstanceID]int64) {
	e.mu.RLock()
	for up, ts := range acks {
		if un := e.nodes[up]; un != nil {
			un.mu.Lock()
			un.outBuf.TrimInstance(inst, ts)
			un.mu.Unlock()
		}
	}
	e.mu.RUnlock()
}

// maybeDelta extracts an incremental checkpoint when the policy allows
// one, or nil when a full checkpoint is due (no managed store, policy
// disabled, no shipped base, delta budget exhausted, encode failure, or
// delta too large relative to the base).
func (n *node) maybeDelta(p state.DeltaPolicy) *state.DeltaCheckpoint {
	if n.store == nil || !p.Enabled() {
		return nil
	}
	n.mu.Lock()
	if n.needFull || n.deltasSince >= p.FullEvery-1 {
		n.mu.Unlock()
		return nil
	}
	base := n.ckptSeq
	n.ckptSeq++
	seq := n.ckptSeq
	tsVec := n.tsVec.Clone()
	buf := n.outBuf.Clone()
	clock := n.outClock.Last()
	acks := state.CloneAcks(n.acks)
	n.mu.Unlock()

	d, err := n.store.TakeDelta(tsVec, base, seq)
	if err != nil {
		return nil
	}
	if !p.DeltaAllowed(d.Size(), n.store.LastFullSize()) {
		// The dirty set is consumed, but the full checkpoint that
		// follows supersedes everything the delta held.
		return nil
	}
	n.mu.Lock()
	n.deltasSince++
	n.mu.Unlock()
	return &state.DeltaCheckpoint{
		Instance: n.inst,
		Delta:    d,
		Buffer:   buf,
		OutClock: clock,
		Acks:     acks,
	}
}

// snapshot builds a full checkpoint (checkpoint-state, §3.2). Operator
// state is copied under the store lock (or the legacy operator's own
// lock); node bookkeeping under the node lock. Returns nil when the
// managed state fails to encode.
func (n *node) snapshot() *state.Checkpoint {
	n.mu.Lock()
	n.ckptSeq++
	seq := n.ckptSeq
	tsVec := n.tsVec.Clone()
	buf := n.outBuf.Clone()
	clock := n.outClock.Last()
	acks := state.CloneAcks(n.acks)
	n.mu.Unlock()

	proc := state.NewProcessing(len(tsVec))
	proc.TS = tsVec
	if n.op != nil {
		kv, err := operator.SnapshotState(n.op)
		if err != nil {
			return nil
		}
		proc.KV = kv
	}
	return &state.Checkpoint{
		Instance:   n.inst,
		Seq:        seq,
		Processing: proc,
		Buffer:     buf,
		OutClock:   clock,
		Acks:       acks,
	}
}

// restore installs a checkpoint on a fresh node (restore-state).
func (n *node) restore(cp *state.Checkpoint) error {
	if n.op != nil {
		if err := operator.RestoreState(n.op, cp.Processing.KV); err != nil {
			return fmt.Errorf("engine: restore %s: %w", n.inst, err)
		}
	}
	n.mu.Lock()
	n.tsVec = cp.Processing.TS.Clone()
	for len(n.tsVec) < len(n.e.mgr.Query().Upstream(n.inst.Op)) {
		n.tsVec = append(n.tsVec, 0)
	}
	n.outBuf = cp.Buffer.Clone()
	n.outClock.Reset(cp.OutClock)
	n.acks = state.CloneAcks(cp.Acks)
	if n.acks == nil {
		n.acks = make(map[plan.InstanceID]int64)
	}
	n.ckptSeq = cp.Seq
	n.deltasSince = 0
	n.needFull = true
	n.mu.Unlock()
	return nil
}

// Fail crash-stops the VM hosting an instance: the node stops processing
// and backups it hosted are lost. Recovery must be triggered by Recover
// (the engine has no background failure detector; detection delay is the
// caller's to model or measure).
func (e *Engine) Fail(inst plan.InstanceID) error {
	e.mu.Lock()
	n := e.nodes[inst]
	if n == nil || n.failed.Load() {
		e.mu.Unlock()
		return fmt.Errorf("engine: %s is not a live instance", inst)
	}
	if n.spec.Role == plan.RoleSource || n.spec.Role == plan.RoleSink {
		e.mu.Unlock()
		return fmt.Errorf("engine: sources and sinks are assumed reliable (§2.2)")
	}
	n.failed.Store(true)
	e.failedAt[inst] = e.NowMillis()
	e.mu.Unlock()
	n.stop()
	e.mgr.HandleHostFailure(inst)
	return nil
}

// Recover replaces a failed instance via the integrated scale-out
// algorithm with parallelism pi (π=1 serial recovery, π≥2 parallel
// recovery).
func (e *Engine) Recover(inst plan.InstanceID, pi int) error {
	return e.replace(inst, pi, true)
}

// ReplaceRecord documents one completed recovery or scale out — the
// live counterpart of the simulator's RecoveryRecord. Times are
// wall-clock milliseconds since Start.
type ReplaceRecord struct {
	Victim         plan.InstanceID
	Pi             int
	Failure        bool
	StartedAt      int64
	CompletedAt    int64
	ReplayedTuples int
}

// Recoveries returns the completed recovery/scale-out records, oldest
// first — including scale-outs triggered by the scaling policy.
func (e *Engine) Recoveries() []ReplaceRecord {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]ReplaceRecord, len(e.records))
	copy(out, e.records)
	return out
}

// ScaleOut splits a live instance into pi partitioned instances
// (Algorithm 3). A fresh checkpoint is taken first so the replayed
// window is small.
func (e *Engine) ScaleOut(victim plan.InstanceID, pi int) error {
	e.mu.RLock()
	n := e.nodes[victim]
	e.mu.RUnlock()
	if n == nil || n.failed.Load() {
		return fmt.Errorf("engine: %s is not live", victim)
	}
	e.checkpointNode(n)
	return e.replace(victim, pi, false)
}

// replace executes Algorithm 3: plan (partition the backed-up checkpoint,
// update the execution graph and routing), deploy replacement nodes,
// restore state, switch routing, repartition upstream buffers, and
// replay. The routing switch and buffer repartitioning happen under the
// engine write lock — the moral equivalent of stopping the upstream
// operators (lines 9-14) — while tuple replay rides the normal channels.
func (e *Engine) replace(victim plan.InstanceID, pi int, failure bool) error {
	q := e.mgr.Query()
	startedAt := e.NowMillis()
	// Failure recovery may fall back to an empty checkpoint when the
	// victim failed before its first backup (PlanRecovery); scale out of
	// a live instance never does.
	planFn := e.mgr.PlanReplace
	if failure {
		planFn = e.mgr.PlanRecovery
	}
	rp, err := planFn(victim, pi)
	if err != nil {
		return err
	}
	spec := q.Op(victim.Op)
	replayed := 0

	// Build replacement nodes and restore their state before exposing
	// them to traffic.
	newNodes := make([]*node, pi)
	for i, inst := range rp.NewInstances {
		nn, err := e.newNode(inst, spec)
		if err != nil {
			return err
		}
		if err := nn.restore(rp.Checkpoints[i]); err != nil {
			return err
		}
		newNodes[i] = nn
	}

	e.mu.Lock()
	old := e.nodes[victim]
	if old != nil {
		old.failed.Store(true)
		delete(e.nodes, victim)
	}
	for _, nn := range newNodes {
		e.nodes[nn.inst] = nn
	}
	e.routings[victim.Op] = rp.Routing

	// Downstream ack inheritance for deterministic π=1 replay (see
	// DESIGN.md on duplicate detection across partitioned restarts).
	if pi == 1 {
		for _, dn := range e.nodes {
			dn.mu.Lock()
			if ts, ok := dn.acks[victim]; ok {
				dn.acks[rp.NewInstances[0]] = ts
				delete(dn.acks, victim)
			}
			dn.mu.Unlock()
		}
	}

	// The victim's own buffered output replays to downstream operators
	// (line 7): queue onto the new nodes' replay queues so it precedes
	// anything they emit themselves.
	for i, nn := range newNodes {
		cp := rp.Checkpoints[i]
		for _, target := range cp.Buffer.Targets() {
			r := e.routings[target.Op]
			for _, t := range cp.Buffer.Tuples(target) {
				to := target
				if r != nil {
					to = r.Lookup(t.Key)
				}
				if tn := e.nodes[to]; tn != nil {
					replayed++
					tn.replayQueue = append(tn.replayQueue, delivery{
						from:  nn.inst,
						input: q.InputIndex(victim.Op, to.Op),
						t:     t,
					})
				}
			}
		}
	}
	// Upstream buffers: repartition under the new routing and queue the
	// retained tuples for replay to the new instances (lines 9-14).
	for _, upOp := range q.Upstream(victim.Op) {
		for _, upInst := range e.mgr.Instances(upOp) {
			un := e.nodes[upInst]
			if un == nil {
				continue
			}
			un.mu.Lock()
			un.outBuf.Repartition(victim.Op, rp.Routing)
			for _, nn := range newNodes {
				for _, t := range un.outBuf.Tuples(nn.inst) {
					replayed++
					nn.replayQueue = append(nn.replayQueue, delivery{
						from:  upInst,
						input: q.InputIndex(upOp, victim.Op),
						t:     t,
					})
				}
			}
			un.mu.Unlock()
		}
	}

	// Start the replacements: each consumes its replay queue first.
	for _, nn := range newNodes {
		e.startNode(nn)
	}
	// Record the transition (the live counterpart of the simulator's
	// RecoveryRecord): for failure recovery the clock starts at Fail.
	if t, ok := e.failedAt[victim]; ok {
		startedAt = t
		delete(e.failedAt, victim)
	}
	e.records = append(e.records, ReplaceRecord{
		Victim:         victim,
		Pi:             pi,
		Failure:        failure,
		StartedAt:      startedAt,
		CompletedAt:    e.NowMillis(),
		ReplayedTuples: replayed,
	})
	e.mu.Unlock()

	// Stop the victim's goroutine after the switch (line 8); on failure
	// it is already down.
	if old != nil && !failure {
		old.stop()
	}
	return nil
}

// sourceDriver injects generated tuples following a rate profile.
type sourceDriver struct {
	inst plan.InstanceID
	rate func(nowMillis int64) float64
	gen  func(i uint64) (stream.Key, any)
}

// AddSource attaches a fixed-rate generator to a source instance. Rate
// is in tuples/second.
func (e *Engine) AddSource(inst plan.InstanceID, rate float64, gen func(i uint64) (stream.Key, any)) error {
	return e.AddSourceFunc(inst, func(int64) float64 { return rate }, gen)
}

// AddSourceFunc attaches a generator whose tuples/second rate may vary
// with wall-clock time since Start. Sources added before Start begin
// with it; sources added later start immediately.
func (e *Engine) AddSourceFunc(inst plan.InstanceID, rate func(nowMillis int64) float64, gen func(i uint64) (stream.Key, any)) error {
	e.mu.Lock()
	n := e.nodes[inst]
	if n == nil || n.spec.Role != plan.RoleSource {
		e.mu.Unlock()
		return fmt.Errorf("engine: %s is not a live source", inst)
	}
	s := &sourceDriver{inst: inst, rate: rate, gen: gen}
	e.sources = append(e.sources, s)
	running := e.started
	e.mu.Unlock()
	if running {
		e.startSource(s)
	}
	return nil
}

func (e *Engine) startSource(s *sourceDriver) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		const tick = 10 * time.Millisecond
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		var emitted uint64
		carry := 0.0
		for {
			select {
			case <-e.stopAll:
				return
			case <-ticker.C:
				e.mu.RLock()
				n := e.nodes[s.inst]
				e.mu.RUnlock()
				if n == nil {
					return
				}
				carry += s.rate(e.NowMillis()) * tick.Seconds()
				k := int(carry)
				carry -= float64(k)
				born := e.NowMillis()
				for i := 0; i < k; i++ {
					key, payload := s.gen(emitted)
					emitted++
					n.emit(key, payload, born)
				}
			}
		}
	}()
}

// InjectBatch synchronously emits count tuples from a source instance —
// for tests and examples that need exact tuple counts rather than rates.
func (e *Engine) InjectBatch(inst plan.InstanceID, count int, gen func(i uint64) (stream.Key, any)) error {
	e.mu.RLock()
	n := e.nodes[inst]
	e.mu.RUnlock()
	if n == nil || n.spec.Role != plan.RoleSource {
		return fmt.Errorf("engine: %s is not a live source", inst)
	}
	born := e.NowMillis()
	for i := 0; i < count; i++ {
		key, payload := gen(uint64(i))
		n.emit(key, payload, born)
	}
	return nil
}

// NodeProcessed returns how many tuples an instance has processed (0 if
// unknown).
func (e *Engine) NodeProcessed(inst plan.InstanceID) uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if n := e.nodes[inst]; n != nil {
		return n.processed.Value()
	}
	return 0
}

// OperatorOf returns the operator instance object hosted by inst, so
// tests and examples can inspect state (nil if unknown).
func (e *Engine) OperatorOf(inst plan.InstanceID) any {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if n := e.nodes[inst]; n != nil {
		return n.op
	}
	return nil
}

// Checkpoint forces an immediate checkpoint of one instance (tests and
// examples; production uses the periodic loop).
func (e *Engine) Checkpoint(inst plan.InstanceID) error {
	e.mu.RLock()
	n := e.nodes[inst]
	e.mu.RUnlock()
	if n == nil || n.failed.Load() {
		return fmt.Errorf("engine: %s is not live", inst)
	}
	e.checkpointNode(n)
	return nil
}

// Quiesce waits until no node has processed a tuple for the given
// settle duration, up to the timeout. Returns true when the engine
// settled. Used by tests to reach a stable state before assertions.
func (e *Engine) Quiesce(settle, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	last := e.totalProcessed()
	lastChange := time.Now()
	for time.Now().Before(deadline) {
		time.Sleep(settle / 4)
		cur := e.totalProcessed()
		if cur != last {
			last = cur
			lastChange = time.Now()
			continue
		}
		if time.Since(lastChange) >= settle {
			return true
		}
	}
	return false
}

func (e *Engine) totalProcessed() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var n uint64
	for _, nd := range e.nodes {
		n += nd.processed.Value()
	}
	return n
}
