package engine

import (
	"sync"
	"testing"
	"time"
)

// TestEngineCheckpointStreamInterleavingExact is the regression test for
// the ack-before-state checkpoint window the barrier protocol closes:
// checkpoints are forced as fast as possible while the stream is hot, a
// failure lands on whatever checkpoint the hammering produced last, and
// recovery must reconstruct EXACTLY the undisturbed per-key results —
// every tuple reflected once, none lost in an ack-without-state gap,
// none duplicated. Before the barrier, a checkpoint could clone the ack
// watermarks between a tuple's ack advance and its state mutation, so a
// recovery from that checkpoint silently dropped the tuple; with capture
// on the node goroutine no such interleaving exists. Run under -race in
// CI.
func TestEngineCheckpointStreamInterleavingExact(t *testing.T) {
	const (
		rounds = 40
		batch  = 50
		vocab  = 25
	)
	for _, bs := range []int{1, 8} {
		e := wordEngine(t, Config{CheckpointInterval: time.Hour, BatchSize: bs})
		e.Start()

		var wg sync.WaitGroup
		injectDone := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(injectDone)
			for i := 0; i < rounds; i++ {
				if err := e.InjectBatch(inst("src", 1), batch, wordGen(vocab)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		// Hammer forced checkpoints against the hot stream: every one is
		// a barrier racing batch boundaries.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-injectDone:
					return
				default:
					if err := e.Checkpoint(inst("count", 1)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
		wg.Wait()

		// Fail WITHOUT a final settling checkpoint: recovery restores
		// whichever mid-stream checkpoint the hammering produced last,
		// plus upstream-buffer replay for the suffix — the exact window
		// the barrier must keep consistent.
		if err := e.Fail(inst("count", 1)); err != nil {
			t.Fatal(err)
		}
		if err := e.Recover(inst("count", 1), 1); err != nil {
			t.Fatal(err)
		}
		if !e.Quiesce(150*time.Millisecond, 10*time.Second) {
			t.Fatal("no quiesce after recovery")
		}

		total := rounds * batch
		got := counts(e)
		if totalOf(got) != int64(total) {
			t.Errorf("batch=%d: state total after recovery = %d, want %d", bs, totalOf(got), total)
		}
		want := int64(total / vocab)
		for w, c := range got {
			if c != want {
				t.Errorf("batch=%d: count[%s] = %d, want %d", bs, w, c, want)
			}
		}
		e.Stop()
	}
}

// TestEngineEpochAdvances pins the route-table snapshot lifecycle: the
// epoch moves only on topology transitions (Start counts as the build,
// scale out rebuilds), never on the data path.
func TestEngineEpochAdvances(t *testing.T) {
	e := wordEngine(t, Config{CheckpointInterval: 50 * time.Millisecond})
	before := e.Epoch()
	if before == 0 {
		t.Fatal("no route-table snapshot after New")
	}
	e.Start()
	defer e.Stop()
	if err := e.InjectBatch(inst("src", 1), 500, wordGen(10)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce")
	}
	if got := e.Epoch(); got != before {
		t.Errorf("epoch advanced on the data path: %d -> %d", before, got)
	}
	if err := e.ScaleOut(inst("count", 1), 2); err != nil {
		t.Fatal(err)
	}
	if got := e.Epoch(); got != before+1 {
		t.Errorf("epoch after scale out = %d, want %d", got, before+1)
	}
}
