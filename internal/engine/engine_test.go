package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"seep/internal/operator"
	"seep/internal/plan"
	"seep/internal/state"
	"seep/internal/stream"
	"seep/internal/wordcount"
)

func inst(op string, part int) plan.InstanceID {
	return plan.InstanceID{Op: plan.OpID(op), Part: part}
}

func wordEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	opts := wordcount.Options{WindowMillis: 0, SplitCost: 0, CountCost: 0}
	e, err := New(cfg, wordcount.Query(opts), wordcount.Factories(opts))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func wordGen(vocab int) func(i uint64) (stream.Key, any) {
	return func(i uint64) (stream.Key, any) {
		w := fmt.Sprintf("word%04d", i%uint64(vocab))
		return stream.KeyOfString(w), w
	}
}

// counts sums word counters across live count partitions.
func counts(e *Engine) map[string]int64 {
	out := make(map[string]int64)
	for _, in := range e.Manager().Instances("count") {
		op, _ := e.OperatorOf(in).(*operator.WordCounter)
		if op == nil {
			continue
		}
		for w, c := range op.Counts() {
			out[w] += c
		}
	}
	return out
}

func totalOf(m map[string]int64) int64 {
	var t int64
	for _, v := range m {
		t += v
	}
	return t
}

func TestEngineProcessesBatch(t *testing.T) {
	e := wordEngine(t, Config{CheckpointInterval: 50 * time.Millisecond})
	e.Start()
	defer e.Stop()
	if err := e.InjectBatch(inst("src", 1), 2000, wordGen(40)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("engine did not quiesce")
	}
	got := counts(e)
	if totalOf(got) != 2000 {
		t.Errorf("state total = %d, want 2000", totalOf(got))
	}
	if len(got) != 40 {
		t.Errorf("distinct words = %d", len(got))
	}
	if e.SinkCount.Value() == 0 {
		t.Error("sink saw nothing")
	}
	if e.Latency.Count() == 0 {
		t.Error("no latency samples")
	}
}

func TestEngineRecoveryExactState(t *testing.T) {
	e := wordEngine(t, Config{CheckpointInterval: time.Hour}) // manual checkpoints only
	e.Start()
	defer e.Stop()

	if err := e.InjectBatch(inst("src", 1), 1000, wordGen(25)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce before checkpoint")
	}
	if err := e.Checkpoint(inst("count", 1)); err != nil {
		t.Fatal(err)
	}
	// More tuples after the checkpoint: they live only in upstream
	// buffers and the victim's volatile state.
	if err := e.InjectBatch(inst("src", 1), 500, wordGen(25)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce before failure")
	}

	if err := e.Fail(inst("count", 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(inst("count", 1), 1); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce after recovery")
	}

	got := counts(e)
	if totalOf(got) != 1500 {
		t.Errorf("state total after recovery = %d, want 1500", totalOf(got))
	}
	// Each word appeared 1500/25 = 60 times.
	for w, c := range got {
		if c != 60 {
			t.Errorf("count[%s] = %d, want 60", w, c)
		}
	}
}

// TestEngineRecoveryBeforeFirstCheckpoint: an operator that fails before
// its first backup restarts from empty state, and the untrimmed upstream
// buffers replay every tuple to rebuild it (the sim cluster's fallback).
func TestEngineRecoveryBeforeFirstCheckpoint(t *testing.T) {
	e := wordEngine(t, Config{CheckpointInterval: time.Hour})
	e.Start()
	defer e.Stop()
	if err := e.InjectBatch(inst("src", 1), 500, wordGen(25)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce")
	}
	if err := e.Fail(inst("count", 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(inst("count", 1), 1); err != nil {
		t.Fatalf("recovery before first checkpoint: %v", err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce after recovery")
	}
	got := counts(e)
	if totalOf(got) != 500 {
		t.Errorf("state total after empty-state recovery = %d, want 500", totalOf(got))
	}
}

// TestEngineRecoveryPlanningErrorPreservesBackup: a recovery that fails
// to plan for a reason other than a missing checkpoint (here: π exceeds
// the operator's max parallelism) must not overwrite the real backup
// with empty state; a subsequent valid recovery restores the true state.
func TestEngineRecoveryPlanningErrorPreservesBackup(t *testing.T) {
	opts := wordcount.Options{WindowMillis: 0}
	q := wordcount.Query(opts)
	q.Op("count").MaxParallelism = 1
	e, err := New(Config{CheckpointInterval: time.Hour}, q, wordcount.Factories(opts))
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	if err := e.InjectBatch(inst("src", 1), 400, wordGen(20)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce")
	}
	if err := e.Checkpoint(inst("count", 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Fail(inst("count", 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(inst("count", 1), 2); err == nil {
		t.Fatal("recovery beyond max parallelism accepted")
	}
	if err := e.Recover(inst("count", 1), 1); err != nil {
		t.Fatalf("serial recovery after failed parallel attempt: %v", err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce after recovery")
	}
	if got := totalOf(counts(e)); got != 400 {
		t.Errorf("state total = %d, want 400 (backup must survive the failed planning attempt)", got)
	}
}

func TestEngineParallelRecovery(t *testing.T) {
	e := wordEngine(t, Config{CheckpointInterval: time.Hour})
	e.Start()
	defer e.Stop()
	if err := e.InjectBatch(inst("src", 1), 1200, wordGen(30)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce")
	}
	if err := e.Checkpoint(inst("count", 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Fail(inst("count", 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(inst("count", 1), 2); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce after parallel recovery")
	}
	if got := e.Manager().Parallelism("count"); got != 2 {
		t.Fatalf("parallelism = %d", got)
	}
	got := counts(e)
	if totalOf(got) != 1200 {
		t.Errorf("state total = %d, want 1200", totalOf(got))
	}
	if len(got) != 30 {
		t.Errorf("distinct = %d", len(got))
	}
}

func TestEngineScaleOutKeepsCounting(t *testing.T) {
	e := wordEngine(t, Config{CheckpointInterval: 50 * time.Millisecond})
	e.Start()
	defer e.Stop()
	if err := e.InjectBatch(inst("src", 1), 1000, wordGen(30)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce")
	}
	if err := e.ScaleOut(inst("count", 1), 2); err != nil {
		t.Fatal(err)
	}
	if err := e.InjectBatch(inst("src", 1), 1000, wordGen(30)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce after scale out")
	}
	got := counts(e)
	if totalOf(got) != 2000 {
		t.Errorf("state total after scale out = %d, want 2000", totalOf(got))
	}
	// State is split across the two partitions, each non-empty.
	for _, in := range e.Manager().Instances("count") {
		op := e.OperatorOf(in).(*operator.WordCounter)
		if op.Distinct() == 0 {
			t.Errorf("partition %v holds no words", in)
		}
	}
}

func TestEngineRatedSource(t *testing.T) {
	e := wordEngine(t, Config{CheckpointInterval: 100 * time.Millisecond})
	if err := e.AddSource(inst("src", 1), 2000, wordGen(20)); err != nil {
		t.Fatal(err)
	}
	e.Start()
	time.Sleep(500 * time.Millisecond)
	e.Stop()
	total := totalOf(counts(e))
	// ~2000/s for ~0.5 s: allow generous scheduling slop.
	if total < 500 || total > 2500 {
		t.Errorf("processed %d tuples from rated source", total)
	}
}

func TestEngineGuards(t *testing.T) {
	e := wordEngine(t, Config{})
	if err := e.AddSource(inst("count", 1), 10, wordGen(2)); err == nil {
		t.Error("AddSource on non-source accepted")
	}
	if err := e.Fail(inst("src", 1)); err == nil {
		t.Error("failing a source accepted")
	}
	if err := e.Fail(inst("count", 7)); err == nil {
		t.Error("failing unknown instance accepted")
	}
	if err := e.Checkpoint(inst("count", 7)); err == nil {
		t.Error("checkpoint of unknown instance accepted")
	}
	if _, err := New(Config{}, wordcount.Query(wordcount.Options{}), nil); err == nil {
		t.Error("missing factories accepted")
	}
}

func TestEngineConcurrentSafety(t *testing.T) {
	// Hammer the engine with concurrent batches, checkpoints and a
	// scale-out; run under -race in CI.
	e := wordEngine(t, Config{CheckpointInterval: 20 * time.Millisecond})
	e.Start()
	defer e.Stop()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_ = e.InjectBatch(inst("src", 1), 100, wordGen(50))
			}
		}()
	}
	wg.Wait()
	if err := e.ScaleOut(inst("count", 1), 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_ = e.InjectBatch(inst("src", 1), 100, wordGen(50))
	}
	if !e.Quiesce(150*time.Millisecond, 10*time.Second) {
		t.Fatal("no quiesce")
	}
	total := totalOf(counts(e))
	// 4500 injected; scale-out duplicate suppression across fresh
	// partitioned streams is best-effort (DESIGN.md), so allow a small
	// over/under margin around the checkpoint lag.
	if total < 4400 || total > 4700 {
		t.Errorf("total = %d, want ≈4500", total)
	}
}

// TestEngineIncrementalCheckpointRecovery drives the live engine with
// manual checkpoints under an incremental policy: a full base, then
// deltas for small churn, then recovery from the folded backup — which
// must reconstruct exactly the same counts as full checkpointing would.
func TestEngineIncrementalCheckpointRecovery(t *testing.T) {
	e := wordEngine(t, Config{
		CheckpointInterval: time.Hour, // manual checkpoints only
		Delta:              state.DeltaPolicy{FullEvery: 8, MaxDeltaFraction: 0.5},
	})
	e.Start()
	defer e.Stop()

	// Large keyspace as the base.
	if err := e.InjectBatch(inst("src", 1), 4000, wordGen(2000)); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce before base checkpoint")
	}
	if err := e.Checkpoint(inst("count", 1)); err != nil {
		t.Fatal(err)
	}
	// Small churn, delta-checkpointed in two rounds.
	for round := 0; round < 2; round++ {
		if err := e.InjectBatch(inst("src", 1), 50, wordGen(10)); err != nil {
			t.Fatal(err)
		}
		if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
			t.Fatal("no quiesce before delta checkpoint")
		}
		if err := e.Checkpoint(inst("count", 1)); err != nil {
			t.Fatal(err)
		}
	}
	ship := e.Manager().Backups().ShipStats()
	if ship.Deltas != 2 {
		t.Fatalf("deltas shipped = %d, want 2 (stats %+v)", ship.Deltas, ship)
	}
	if ship.DeltaBytes/ship.Deltas >= ship.FullBytes/ship.Fulls {
		t.Errorf("avg delta %d not smaller than avg full %d",
			ship.DeltaBytes/ship.Deltas, ship.FullBytes/ship.Fulls)
	}

	if err := e.Fail(inst("count", 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Recover(inst("count", 1), 1); err != nil {
		t.Fatal(err)
	}
	if !e.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce after recovery")
	}
	got := counts(e)
	if totalOf(got) != 4100 {
		t.Errorf("state total after recovery from folded backup = %d, want 4100", totalOf(got))
	}
}
