package seep_test

import (
	"fmt"
	"testing"
	"time"

	"seep"
)

// Example builds the §3.1 running example — a word-frequency query with
// managed operator state — runs it on the live engine and reads the
// counter's state back.
func Example() {
	q := seep.NewQuery()
	q.AddOp(seep.OpSpec{ID: "src", Role: seep.RoleSource})
	q.AddOp(seep.OpSpec{ID: "split", Role: seep.RoleStateless})
	q.AddOp(seep.OpSpec{ID: "count", Role: seep.RoleStateful})
	q.AddOp(seep.OpSpec{ID: "sink", Role: seep.RoleSink})
	q.Connect("src", "split").Connect("split", "count").Connect("count", "sink")

	eng, err := seep.NewEngine(seep.EngineConfig{}, q, map[seep.OpID]seep.Factory{
		"split": func() seep.Operator { return seep.WordSplitter() },
		"count": func() seep.Operator { return seep.NewWordCounter(0) },
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	eng.Start()
	defer eng.Stop()

	sentences := []string{"first set", "second set"}
	_ = eng.InjectBatch(seep.InstanceID{Op: "src", Part: 1}, len(sentences),
		func(i uint64) (seep.Key, any) {
			return seep.KeyOf([]byte(sentences[i])), sentences[i]
		})
	eng.Quiesce(50*time.Millisecond, 5*time.Second)

	counter := eng.OperatorOf(seep.InstanceID{Op: "count", Part: 1}).(*seep.WordCounter)
	fmt.Println("set:", counter.Count("set"))
	fmt.Println("first:", counter.Count("first"))
	// Output:
	// set: 2
	// first: 1
}

// TestPublicAPIEndToEnd drives the full public surface: build a query,
// run it live, checkpoint, fail, recover, scale out, and verify state.
func TestPublicAPIEndToEnd(t *testing.T) {
	q := seep.NewQuery()
	q.AddOp(seep.OpSpec{ID: "src", Role: seep.RoleSource})
	q.AddOp(seep.OpSpec{ID: "split", Role: seep.RoleStateless})
	q.AddOp(seep.OpSpec{ID: "count", Role: seep.RoleStateful})
	q.AddOp(seep.OpSpec{ID: "sink", Role: seep.RoleSink})
	q.Connect("src", "split").Connect("split", "count").Connect("count", "sink")

	eng, err := seep.NewEngine(seep.EngineConfig{CheckpointInterval: time.Hour},
		q, map[seep.OpID]seep.Factory{
			"split": func() seep.Operator { return seep.WordSplitter() },
			"count": func() seep.Operator { return seep.NewWordCounter(0) },
		})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	defer eng.Stop()

	gen := func(i uint64) (seep.Key, any) {
		w := fmt.Sprintf("w%02d", i%10)
		return seep.KeyOfString(w), w
	}
	src := seep.InstanceID{Op: "src", Part: 1}
	if err := eng.InjectBatch(src, 500, gen); err != nil {
		t.Fatal(err)
	}
	if !eng.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce")
	}
	victim := seep.InstanceID{Op: "count", Part: 1}
	if err := eng.Checkpoint(victim); err != nil {
		t.Fatal(err)
	}
	if err := eng.InjectBatch(src, 250, gen); err != nil {
		t.Fatal(err)
	}
	if !eng.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce")
	}
	if err := eng.Fail(victim); err != nil {
		t.Fatal(err)
	}
	if err := eng.Recover(victim, 1); err != nil {
		t.Fatal(err)
	}
	if !eng.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce after recovery")
	}
	recovered := eng.Manager().Instances("count")[0]
	counter := eng.OperatorOf(recovered).(*seep.WordCounter)
	for i := 0; i < 10; i++ {
		w := fmt.Sprintf("w%02d", i)
		if got := counter.Count(w); got != 75 {
			t.Errorf("Count(%s) = %d, want 75", w, got)
		}
	}
	// Scale out the recovered instance.
	if err := eng.ScaleOut(recovered, 2); err != nil {
		t.Fatal(err)
	}
	if got := eng.Manager().Parallelism("count"); got != 2 {
		t.Errorf("parallelism = %d", got)
	}
}

// TestPublicAPISimCluster drives the simulated-cloud surface.
func TestPublicAPISimCluster(t *testing.T) {
	q := seep.NewQuery()
	q.AddOp(seep.OpSpec{ID: "src", Role: seep.RoleSource})
	q.AddOp(seep.OpSpec{ID: "sum", Role: seep.RoleStateful, CostPerTuple: 0.0001})
	q.AddOp(seep.OpSpec{ID: "sink", Role: seep.RoleSink})
	q.Connect("src", "sum").Connect("sum", "sink")

	c, err := seep.NewSimCluster(seep.ClusterConfig{
		Seed: 1, Mode: seep.FTRSM,
		CheckpointIntervalMillis: 2_000,
		Pool:                     seep.PoolConfig{Size: 2},
	}, q, map[seep.OpID]seep.Factory{
		"sum": func() seep.Operator {
			return seep.NewKeyedSum(0, func(p any) (float64, bool) {
				v, ok := p.(float64)
				return v, ok
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddSource(seep.InstanceID{Op: "src", Part: 1}, seep.ConstantRate(200),
		func(i uint64) (seep.Key, any) {
			return seep.Key(i % 7), 1.0
		}); err != nil {
		t.Fatal(err)
	}
	c.Sim().At(10_000, func() {
		_ = c.FailInstance(seep.InstanceID{Op: "sum", Part: 1})
	})
	c.RunUntil(30_000)
	if len(c.Recoveries()) != 1 {
		t.Fatalf("recoveries = %v", c.Recoveries())
	}
	live := c.LiveInstances("sum")
	if len(live) != 1 {
		t.Fatalf("live = %v", live)
	}
	sum := c.OperatorOf(live[0]).(*seep.KeyedSum)
	var total float64
	for k := seep.Key(0); k < 7; k++ {
		total += sum.Sum(k)
	}
	// 200 tuples/s × ~30 s ≈ 6000 observations of value 1.0; allow for
	// tuples in flight at the cut-off.
	if total < 5900 || total > 6000 {
		t.Errorf("recovered running total = %v, want ≈6000", total)
	}
	if c.Latency.Count() == 0 {
		t.Error("no latency samples")
	}
	if seep.DefaultPolicy().Threshold != 0.70 {
		t.Error("unexpected default policy")
	}
}
