package seep_test

import (
	"fmt"
	"testing"
	"time"

	"seep"
)

// Example builds the §3.1 running example — a word-frequency query with
// managed operator state — with the fluent Topology builder, runs it on
// the live runtime and reads the counter's state back.
func Example() {
	topo, err := seep.NewTopology().
		Source("src").
		Stateless("split", func() seep.Operator { return seep.WordSplitter() }).
		Stateful("count", func() seep.Operator { return seep.NewWordCounter(0) }).
		Sink("sink").
		Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	job, err := seep.Live().Deploy(topo)
	if err != nil {
		fmt.Println(err)
		return
	}
	job.Start()
	defer job.Stop()

	sentences := []string{"first set", "second set"}
	_ = job.InjectBatch("src", len(sentences), func(i uint64) (seep.Key, any) {
		return seep.KeyOf([]byte(sentences[i])), sentences[i]
	})
	job.Run(5 * time.Second)

	counter := job.OperatorOf(job.Instances("count")[0]).(*seep.WordCounter)
	fmt.Println("set:", counter.Count("set"))
	fmt.Println("first:", counter.Count("first"))
	// Output:
	// set: 2
	// first: 1
}

// TestPublicAPIEndToEnd drives the full public surface on the live
// runtime: build a topology, deploy, inject, fail, auto-recover, scale
// out, and verify state.
func TestPublicAPIEndToEnd(t *testing.T) {
	job, err := seep.Live(
		seep.WithCheckpointInterval(100*time.Millisecond),
		seep.WithDetectDelay(150*time.Millisecond),
	).Deploy(wordcountTopology())
	if err != nil {
		t.Fatal(err)
	}
	job.Start()
	defer job.Stop()

	if err := job.InjectBatch("src", 500, parityGen); err != nil {
		t.Fatal(err)
	}
	job.Run(2 * time.Second)
	victim := job.Instances("count")[0]
	if err := job.Fail(victim); err != nil {
		t.Fatal(err)
	}
	job.Run(3 * time.Second)
	if err := job.InjectBatch("src", 250, parityGen); err != nil {
		t.Fatal(err)
	}
	job.Run(2 * time.Second)

	recovered := job.Instances("count")[0]
	counter := job.OperatorOf(recovered).(*seep.WordCounter)
	for i := 0; i < 10; i++ {
		w := fmt.Sprintf("w%02d", i)
		if got := counter.Count(w); got != 75 {
			t.Errorf("Count(%s) = %d, want 75", w, got)
		}
	}
	// Scale out the recovered instance through the Job interface.
	if err := job.ScaleOut(recovered, 2); err != nil {
		t.Fatal(err)
	}
	m := job.MetricsSnapshot()
	if got := m.Parallelism["count"]; got != 2 {
		t.Errorf("parallelism = %d", got)
	}
	if len(m.Recoveries) != 2 {
		t.Errorf("Recoveries = %v, want failure recovery + scale out", m.Recoveries)
	}
}

// TestPublicAPISimCluster drives the simulated-cloud substrate through
// the same Job interface.
func TestPublicAPISimCluster(t *testing.T) {
	topo, err := seep.NewTopology().
		Source("src").
		Stateful("sum", func() seep.Operator {
			return seep.NewKeyedSum(0, func(p any) (float64, bool) {
				v, ok := p.(float64)
				return v, ok
			})
		}, seep.Cost(0.0001)).
		Sink("sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	job, err := seep.Simulated(
		seep.WithSeed(1),
		seep.WithFTMode(seep.FTRSM),
		seep.WithCheckpointInterval(2*time.Second),
		seep.WithVMPool(seep.PoolConfig{Size: 2}),
	).Deploy(topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.AddSource("src", seep.ConstantRate(200), func(i uint64) (seep.Key, any) {
		return seep.Key(i % 7), 1.0
	}); err != nil {
		t.Fatal(err)
	}
	job.Start()
	defer job.Stop()
	job.Run(10 * time.Second)
	if err := job.Fail(job.Instances("sum")[0]); err != nil {
		t.Fatal(err)
	}
	job.Run(20 * time.Second)

	m := job.MetricsSnapshot()
	if len(m.Recoveries) != 1 {
		t.Fatalf("recoveries = %v", m.Recoveries)
	}
	live := job.Instances("sum")
	if len(live) != 1 {
		t.Fatalf("live = %v", live)
	}
	sum := job.OperatorOf(live[0]).(*seep.KeyedSum)
	var total float64
	for k := seep.Key(0); k < 7; k++ {
		total += sum.Sum(k)
	}
	// 200 tuples/s × ~30 s ≈ 6000 observations of value 1.0; allow for
	// tuples in flight at the cut-off.
	if total < 5900 || total > 6000 {
		t.Errorf("recovered running total = %v, want ≈6000", total)
	}
	if m.Latency.Count == 0 {
		t.Error("no latency samples")
	}
	if seep.DefaultPolicy().Threshold != 0.70 {
		t.Error("unexpected default policy")
	}
}

// TestDeprecatedConstructors keeps the pre-Topology surface working: the
// old NewQuery/NewEngine plumbing must behave exactly as before, as thin
// wrappers over the same runtime.
func TestDeprecatedConstructors(t *testing.T) {
	q := seep.NewQuery()
	q.AddOp(seep.OpSpec{ID: "src", Role: seep.RoleSource})
	q.AddOp(seep.OpSpec{ID: "split", Role: seep.RoleStateless})
	q.AddOp(seep.OpSpec{ID: "count", Role: seep.RoleStateful})
	q.AddOp(seep.OpSpec{ID: "sink", Role: seep.RoleSink})
	q.Connect("src", "split").Connect("split", "count").Connect("count", "sink")

	eng, err := seep.NewEngine(seep.EngineConfig{}, q, map[seep.OpID]seep.Factory{
		"split": func() seep.Operator { return seep.WordSplitter() },
		"count": func() seep.Operator { return seep.NewWordCounter(0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	defer eng.Stop()
	if err := eng.InjectBatch(seep.InstanceID{Op: "src", Part: 1}, 100, parityGen); err != nil {
		t.Fatal(err)
	}
	if !eng.Quiesce(100*time.Millisecond, 5*time.Second) {
		t.Fatal("no quiesce")
	}
	counter := eng.OperatorOf(seep.InstanceID{Op: "count", Part: 1}).(*seep.WordCounter)
	var total int64
	for i := 0; i < 10; i++ {
		total += counter.Count(fmt.Sprintf("w%02d", i))
	}
	if total != 100 {
		t.Errorf("total = %d, want 100", total)
	}

	// The old panicking construction mistakes now surface as errors.
	bad := seep.NewQuery()
	bad.AddOp(seep.OpSpec{ID: "a", Role: seep.RoleSource})
	bad.Connect("a", "ghost")
	if _, err := seep.NewEngine(seep.EngineConfig{}, bad, nil); err == nil {
		t.Error("NewEngine accepted a query with a dangling edge")
	}
}
