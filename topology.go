package seep

import (
	"errors"
	"fmt"
	"sync"

	"seep/internal/operator"
	"seep/internal/plan"
)

// Topology is a fluent, validating builder that binds the two halves of
// a query — the logical graph and the operator factories — in one place:
//
//	topo, err := seep.NewTopology().
//		Source("src").
//		Stateless("split", func() seep.Operator { return seep.WordSplitter() }).
//		Stateful("count", func() seep.Operator { return seep.NewWordCounter(0) }).
//		Sink("sink").
//		Build()
//
// Operators declared in sequence are chained linearly unless explicit
// Connect calls are made; non-linear DAGs (fan-out, fan-in, diamonds)
// declare every stream with Connect:
//
//	seep.NewTopology().
//		Source("feeder").
//		Stateful("assessment", f).
//		Stateless("collector", g).
//		Stateful("balance", h).
//		Sink("sink").
//		Connect("feeder", "assessment").
//		Connect("assessment", "collector").Connect("assessment", "balance").
//		Connect("collector", "sink").Connect("balance", "sink").
//		Build()
//
// Build validates the whole declaration — duplicate or empty operator
// IDs, streams to undeclared operators, cycles, unreachable operators,
// role violations (sources with inputs, sinks with outputs), nil
// factories — and returns every problem as one error instead of letting
// it surface as a panic or a silent runtime misbehaviour. A built
// Topology is immutable and can be deployed on any Runtime.
type Topology struct {
	// mu makes Build/Deploy safe to race — one topology deployed on
	// both runtimes concurrently is an advertised usage.
	mu        sync.Mutex
	specs     []plan.OpSpec
	factories map[OpID]Factory
	edges     []struct{ from, to OpID }
	errs      []error

	// query is non-nil once Build has succeeded.
	query *plan.Query
}

// NewTopology returns an empty topology builder.
func NewTopology() *Topology {
	return &Topology{factories: make(map[OpID]Factory)}
}

// FromQuery wraps an already-constructed query graph and its operator
// factories into a built Topology — the bridge for code that assembles
// plan-level queries programmatically (generated workloads, the internal
// experiment queries). The query is validated and every non-source,
// non-sink operator must have a factory. New code should prefer the
// fluent builder.
func FromQuery(q *Query, factories map[OpID]Factory) (*Topology, error) {
	if q == nil {
		return nil, errors.New("seep: nil query")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	t := &Topology{factories: make(map[OpID]Factory, len(factories))}
	for _, id := range q.Ops() {
		spec := q.Op(id)
		if spec.Role == RoleSource || spec.Role == RoleSink {
			continue
		}
		f := factories[id]
		if f == nil {
			return nil, fmt.Errorf("seep: operator %q: no factory", id)
		}
		t.factories[id] = f
	}
	t.query = q
	return t, nil
}

// OpOption tweaks one operator declaration.
type OpOption func(*plan.OpSpec)

// Cost declares the CPU cost of processing one tuple, in abstract cost
// units; the simulated runtime divides it by VM capacity to obtain
// service time.
func Cost(perTuple float64) OpOption {
	return func(s *plan.OpSpec) { s.CostPerTuple = perTuple }
}

// MaxParallelism caps how far the operator can be scaled out
// (0 = unlimited).
func MaxParallelism(n int) OpOption {
	return func(s *plan.OpSpec) { s.MaxParallelism = n }
}

// Parallelism sets the number of instances at deployment (default 1).
func Parallelism(n int) OpOption {
	return func(s *plan.OpSpec) { s.InitialParallelism = n }
}

// StateBytesPerKey estimates the processing-state footprint per distinct
// key, used by the simulated runtime to model checkpoint cost.
func StateBytesPerKey(n int) OpOption {
	return func(s *plan.OpSpec) { s.StateBytesPerKey = n }
}

// Source declares a tuple-injecting operator. Sources are assumed
// reliable and host no user code; tuples are supplied through
// Job.AddSource or Job.InjectBatch.
func (t *Topology) Source(id string, opts ...OpOption) *Topology {
	return t.declare(plan.OpSpec{ID: OpID(id), Role: RoleSource}, nil, false, opts)
}

// Stateless declares an operator with no managed state, built by f.
func (t *Topology) Stateless(id string, f Factory, opts ...OpOption) *Topology {
	return t.declare(plan.OpSpec{ID: OpID(id), Role: RoleStateless}, f, true, opts)
}

// Stateful declares an operator whose state the system checkpoints,
// backs up, partitions and restores, built by f. The operator returned
// by f should implement Managed (managed state cells against a
// StateStore) — or the deprecated Stateful contract; otherwise its
// state is treated as empty by the state-management protocol.
func (t *Topology) Stateful(id string, f Factory, opts ...OpOption) *Topology {
	return t.declare(plan.OpSpec{ID: OpID(id), Role: RoleStateful}, f, true, opts)
}

// Sink declares a result-gathering operator. Sinks are assumed reliable
// and host no user code; results are observed through Job.OnSink.
func (t *Topology) Sink(id string, opts ...OpOption) *Topology {
	return t.declare(plan.OpSpec{ID: OpID(id), Role: RoleSink}, nil, false, opts)
}

func (t *Topology) declare(spec plan.OpSpec, f Factory, needsFactory bool, opts []OpOption) *Topology {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.query != nil {
		t.errs = append(t.errs, fmt.Errorf("seep: topology already built; declare %q before Build", spec.ID))
		return t
	}
	if needsFactory && f == nil {
		t.errs = append(t.errs, fmt.Errorf("seep: operator %q: nil factory", spec.ID))
	}
	for _, o := range opts {
		o(&spec)
	}
	t.specs = append(t.specs, spec)
	if f != nil {
		t.factories[spec.ID] = f
	}
	return t
}

// Connect declares a stream from one operator to another. Once any
// explicit Connect call is made, implicit linear chaining is disabled
// and every stream of the topology must be declared.
func (t *Topology) Connect(from, to string) *Topology {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.query != nil {
		t.errs = append(t.errs, fmt.Errorf("seep: topology already built; connect %q -> %q before Build", from, to))
		return t
	}
	t.edges = append(t.edges, struct{ from, to OpID }{OpID(from), OpID(to)})
	return t
}

// Build validates the topology and freezes it. It returns the topology
// itself for single-expression construction, or the combined list of
// declaration errors: duplicate/empty IDs, streams naming undeclared
// operators, cycles, operators unreachable between a source and a sink,
// role violations and nil factories.
func (t *Topology) Build() (*Topology, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.buildLocked()
}

func (t *Topology) buildLocked() (*Topology, error) {
	if t.query != nil {
		// Declarations attempted after a successful Build are errors,
		// never silently dropped.
		if len(t.errs) > 0 {
			return nil, errors.Join(t.errs...)
		}
		return t, nil
	}
	q := plan.NewQuery()
	for _, spec := range t.specs {
		q.AddOp(spec)
	}
	edges := t.edges
	if len(edges) == 0 {
		// Linear chain in declaration order.
		for i := 1; i < len(t.specs); i++ {
			edges = append(edges, struct{ from, to OpID }{t.specs[i-1].ID, t.specs[i].ID})
		}
	}
	for _, e := range edges {
		q.Connect(e.from, e.to)
	}
	errs := t.errs
	if err := q.Validate(); err != nil {
		errs = append(errs, err)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	t.query = q
	return t, nil
}

// MustBuild is Build for static topologies known to be correct; it
// panics on validation errors.
func (t *Topology) MustBuild() *Topology {
	built, err := t.Build()
	if err != nil {
		panic(err)
	}
	return built
}

// Query returns the validated logical query graph (nil before a
// successful Build).
func (t *Topology) Query() *Query {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.query
}

// Factories returns the operator factory bound to each non-source,
// non-sink operator.
func (t *Topology) Factories() map[OpID]Factory {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[OpID]Factory, len(t.factories))
	for id, f := range t.factories {
		out[id] = f
	}
	return out
}

// built returns the validated query and factories, building on demand so
// runtimes accept both built and not-yet-built topologies.
func (t *Topology) built() (*plan.Query, map[plan.OpID]operator.Factory, error) {
	if t == nil {
		return nil, nil, errors.New("seep: nil topology")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := t.buildLocked(); err != nil {
		return nil, nil, err
	}
	return t.query, t.factories, nil
}
